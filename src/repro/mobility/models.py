"""Mobility models: per-user positions evolving over simulated time.

The paper fixes each user to one link to a single server ``S``; every
latency model before this package was a *static* map from ids to RTTs.
Real edge users move — the vehicular offloading schedulers this package
draws on re-pick their nearest base station as the vehicle drives — so
the first ingredient of a time-varying network is a
:class:`MobilityModel`: an object that places each user somewhere on the
unit square and advances that position by ``dt`` simulated seconds at a
time.

Two classic models are provided:

* :class:`RandomWaypoint` — the standard ad-hoc-network benchmark
  model: pick a uniform waypoint, walk toward it at constant speed,
  pause on arrival, repeat.  Bounded to the unit square by
  construction (waypoints are drawn inside it).
* :class:`VehicularCorridor` — constant-velocity traffic lanes: each
  user is assigned a horizontal lane, drives along it at the model's
  speed (direction alternating per lane) and wraps around at the edge,
  like vehicles circulating a ring road past roadside base stations.

Determinism is a hard contract (the repo's determinism lint gates this
package): every model takes an explicit integer seed, derives one
independent :class:`~repro.utils.rng.RandomSource` stream per user id,
and never reads wall clocks — simulated time only enters through the
``dt`` arguments the caller passes.  The same seed therefore reproduces
the same trajectories, tick for tick, across processes and machines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.utils.rng import RandomSource

Position = tuple[float, float]
"""A point on the unit square."""


class MobilityModel(abc.ABC):
    """Places users on the unit square and evolves them over time.

    Models own their per-user state (current position, current waypoint,
    remaining pause, lane assignment, …) keyed by user id; the
    :class:`~repro.mobility.field.MobilityField` drives every known user
    through :meth:`advance` once per tick.  Both methods are
    deterministic functions of the constructor arguments, the user id
    and the sequence of ``dt`` values seen so far.
    """

    name: str = "custom"

    @abc.abstractmethod
    def place(self, user_id: str) -> Position:
        """Return (and remember) *user_id*'s initial position."""

    @abc.abstractmethod
    def advance(self, user_id: str, dt: float) -> Position:
        """Advance *user_id* by *dt* simulated seconds; return the position.

        Unknown users are placed first (as if :meth:`place` had been
        called) and then advanced, so a field can drive late joiners
        without special-casing them.
        """


def _check_dt(dt: float) -> float:
    if dt < 0:
        raise ValueError(f"dt must be >= 0, got {dt}")
    return dt


@dataclass
class _WaypointState:
    """One random-waypoint user: where they are, where they're headed."""

    position: Position
    waypoint: Position
    pause_left: float


class RandomWaypoint(MobilityModel):
    """The random-waypoint model on the unit square.

    Each user starts at a uniform position with a uniform waypoint,
    walks toward the waypoint at *speed* (units of the square per
    simulated second), pauses *pause_time* seconds on arrival, then
    draws the next waypoint.  All randomness comes from one
    :class:`~repro.utils.rng.RandomSource` child stream per user id, so
    trajectories are independent across users yet fully reproducible
    from *seed* — admission order cannot change anyone's path.
    """

    name = "waypoint"

    def __init__(
        self, speed: float = 0.05, pause_time: float = 0.0, seed: int = 0
    ) -> None:
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        if pause_time < 0:
            raise ValueError(f"pause_time must be >= 0, got {pause_time}")
        self.speed = speed
        self.pause_time = pause_time
        self.seed = seed
        self._root = RandomSource(seed).spawn("waypoint")
        self._users: dict[str, _WaypointState] = {}
        self._rngs: dict[str, RandomSource] = {}

    def _rng(self, user_id: str) -> RandomSource:
        rng = self._rngs.get(user_id)
        if rng is None:
            rng = self._root.spawn(user_id)
            self._rngs[user_id] = rng
        return rng

    def _state(self, user_id: str) -> _WaypointState:
        state = self._users.get(user_id)
        if state is None:
            rng = self._rng(user_id)
            state = _WaypointState(
                position=(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)),
                waypoint=(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)),
                pause_left=0.0,
            )
            self._users[user_id] = state
        return state

    def place(self, user_id: str) -> Position:
        return self._state(user_id).position

    def advance(self, user_id: str, dt: float) -> Position:
        dt = _check_dt(dt)
        state = self._state(user_id)
        rng = self._rng(user_id)
        remaining = dt
        while remaining > 0:
            if state.pause_left > 0:
                waited = min(state.pause_left, remaining)
                state.pause_left -= waited
                remaining -= waited
                continue
            if self.speed == 0:
                break
            x, y = state.position
            wx, wy = state.waypoint
            distance = ((wx - x) ** 2 + (wy - y) ** 2) ** 0.5
            reach = self.speed * remaining
            if reach < distance:
                fraction = reach / distance
                state.position = (x + (wx - x) * fraction, y + (wy - y) * fraction)
                break
            # Arrive at the waypoint, spend the travel time, then pause
            # and draw the next destination.
            state.position = state.waypoint
            remaining -= distance / self.speed if self.speed > 0 else remaining
            state.pause_left = self.pause_time
            state.waypoint = (rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0))
        return state.position


@dataclass
class _CorridorState:
    """One corridor user: lane y, signed speed along x, current x."""

    x: float
    y: float
    velocity: float


class VehicularCorridor(MobilityModel):
    """Constant-velocity traffic lanes with wraparound.

    *lanes* horizontal lanes are spread evenly across the unit square's
    height; each user is assigned a lane and a starting ``x`` from their
    seeded stream and then drives at exactly *speed* along the lane —
    eastbound on even lanes, westbound on odd ones — wrapping from 1
    back to 0 (a ring road).  Vehicles pass every roadside station once
    per lap, which is the workload that makes naive nearest-station
    handover churn and hysteresis pay off.
    """

    name = "corridor"

    def __init__(self, speed: float = 0.05, lanes: int = 2, seed: int = 0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.speed = speed
        self.lanes = lanes
        self.seed = seed
        self._root = RandomSource(seed).spawn("corridor")
        self._users: dict[str, _CorridorState] = {}

    def _state(self, user_id: str) -> _CorridorState:
        state = self._users.get(user_id)
        if state is None:
            rng = self._root.spawn(user_id)
            lane = rng.randint(0, self.lanes - 1)
            y = (lane + 0.5) / self.lanes
            direction = 1.0 if lane % 2 == 0 else -1.0
            state = _CorridorState(
                x=rng.uniform(0.0, 1.0), y=y, velocity=direction * self.speed
            )
            self._users[user_id] = state
        return state

    def place(self, user_id: str) -> Position:
        state = self._state(user_id)
        return (state.x, state.y)

    def advance(self, user_id: str, dt: float) -> Position:
        dt = _check_dt(dt)
        state = self._state(user_id)
        state.x = (state.x + state.velocity * dt) % 1.0
        return (state.x, state.y)


MOBILITY_MODELS = ("corridor", "waypoint")
"""Registered mobility-model names, for CLIs and experiment sweeps."""


def make_mobility_model(
    name: str, *, speed: float = 0.05, pause_time: float = 0.0, lanes: int = 2, seed: int = 0
) -> MobilityModel:
    """Build a mobility model by registered name.

    Options irrelevant to the chosen model (waypoint's *pause_time*,
    the corridor's *lanes*) are ignored by the other, so sweeps can pass
    one option set to every name.

    >>> make_mobility_model("corridor", speed=0.1).name
    'corridor'
    """
    if name == "waypoint":
        return RandomWaypoint(speed=speed, pause_time=pause_time, seed=seed)
    if name == "corridor":
        return VehicularCorridor(speed=speed, lanes=lanes, seed=seed)
    raise ValueError(
        f"unknown mobility model {name!r}; expected one of {list(MOBILITY_MODELS)}"
    )
