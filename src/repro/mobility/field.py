"""The mobility field: live user positions plus fixed server sites.

A :class:`MobilityField` is the single source of spatial truth for a
moving fleet: it owns a :class:`~repro.mobility.models.MobilityModel`
(which evolves user positions), a static map of server positions (base
stations do not move), and the simulated clock.  ``advance(dt)`` steps
every known user forward by *dt* simulated seconds in sorted-id order —
iteration order never leaks into trajectories, because each user draws
from an independent seeded stream, but sorting makes the walk itself
reproducible too.

Server sites come from the same placement the static geo model uses:
:meth:`from_geo` reads them off a
:class:`~repro.fleet.latency.GeoLatencyMap` through its
:meth:`~repro.fleet.latency.GeoLatencyMap.position` accessor, so a fleet
that starts static and turns mobile keeps its geography — users start
moving *between* the very sites the static map had placed, instead of a
freshly re-derived sha256 layout.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.fleet.latency import GeoLatencyMap
from repro.mobility.models import MobilityModel, Position


def evenly_spaced_stations(
    server_ids: Sequence[str], y: float = 0.5
) -> dict[str, Position]:
    """Base stations spread evenly along a horizontal road at height *y*.

    Station *i* of *n* sits at ``x = (i + 0.5) / n`` — the classic
    roadside-unit layout for corridor workloads, where every vehicle
    passes every station once per wraparound lap.

    >>> evenly_spaced_stations(["a", "b"])
    {'a': (0.25, 0.5), 'b': (0.75, 0.5)}
    """
    if not server_ids:
        raise ValueError("need at least one server id")
    if not 0.0 <= y <= 1.0:
        raise ValueError(f"y must be within the unit square, got {y}")
    n = len(server_ids)
    return {
        server_id: ((index + 0.5) / n, y)
        for index, server_id in enumerate(server_ids)
    }


class MobilityField:
    """Live positions for moving users and fixed servers, plus the clock.

    Users are registered lazily: the first position query places them
    through the model, so admission code never has to pre-declare who
    will move.  :meth:`advance` steps *every* registered user — the
    field's notion of one tick — and accumulates simulated time in
    :attr:`now`.
    """

    def __init__(
        self,
        model: MobilityModel,
        server_positions: Mapping[str, Position],
        users: Iterable[str] = (),
    ) -> None:
        if not server_positions:
            raise ValueError("a mobility field needs at least one server site")
        for server_id, (x, y) in server_positions.items():
            if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
                raise ValueError(
                    f"server {server_id!r} position {(x, y)} is outside the unit square"
                )
        self.model = model
        self._servers = dict(server_positions)
        self._positions: dict[str, Position] = {}
        self.now = 0.0
        self.ticks = 0
        for user_id in users:
            self.ensure_user(user_id)

    @classmethod
    def from_geo(
        cls,
        model: MobilityModel,
        geo: GeoLatencyMap,
        server_ids: Sequence[str],
        users: Iterable[str] = (),
    ) -> "MobilityField":
        """Seed server sites from *geo*'s placement (explicit or hashed).

        The static and mobile maps then agree on where every server
        stands: ``field.position(server_id) == geo.position(server_id)``
        for every id in *server_ids*.
        """
        return cls(
            model,
            {server_id: geo.position(server_id) for server_id in server_ids},
            users=users,
        )

    @property
    def server_ids(self) -> list[str]:
        return sorted(self._servers)

    @property
    def user_ids(self) -> list[str]:
        return sorted(self._positions)

    def ensure_user(self, user_id: str) -> Position:
        """Register *user_id* (placing them via the model) if new."""
        position = self._positions.get(user_id)
        if position is None:
            if user_id in self._servers:
                raise ValueError(f"{user_id!r} is already a server site")
            position = self.model.place(user_id)
            self._positions[user_id] = position
        return position

    def position(self, node_id: str) -> Position:
        """Current position of a server site or (auto-registered) user."""
        server = self._servers.get(node_id)
        if server is not None:
            return server
        return self.ensure_user(node_id)

    def distance(self, user_id: str, server_id: str) -> float:
        """Euclidean distance from *user_id*'s live position to the site."""
        server = self._servers.get(server_id)
        if server is None:
            raise KeyError(f"unknown server site {server_id!r}")
        ux, uy = self.ensure_user(user_id)
        return math.hypot(ux - server[0], uy - server[1])

    def nearest_server(self, user_id: str) -> str:
        """The server site closest to *user_id*'s live position."""
        return min(
            self._servers, key=lambda sid: (self.distance(user_id, sid), sid)
        )

    def advance(self, dt: float) -> None:
        """Step every registered user forward by *dt* simulated seconds."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        for user_id in sorted(self._positions):
            self._positions[user_id] = self.model.advance(user_id, dt)
        self.now += dt
        self.ticks += 1
