"""A time-varying latency map backed by live mobility positions.

:class:`MobileLatencyMap` is the mobility analogue of
:class:`~repro.fleet.latency.GeoLatencyMap`: the same distance→RTT
formula (``base_rtt + seconds_per_unit * distance``), but the user end
of the link reads its *live* position from a
:class:`~repro.mobility.field.MobilityField` instead of a frozen hash
placement.  ``advance(dt)`` steps the field, so ``rtt()`` answers a
different number after every tick — exactly the property the fleet's
telemetry series (``fleet_rtt_<user>@<server>``), affinity routing's
``latency_slack`` and the handover policies all key off.

The class satisfies the :class:`~repro.fleet.latency.LatencyMap`
contract, so an :class:`~repro.fleet.fleet.EdgeFleet` accepts it
anywhere a static map went; the fleet's ``tick(dt)`` discovers the
``advance`` method by duck typing (static maps simply have none), which
keeps :mod:`repro.fleet` free of any import of this package.
"""

from __future__ import annotations

from repro.fleet.latency import GeoLatencyMap, LatencyMap
from repro.mobility.field import MobilityField
from repro.mobility.models import MobilityModel


class MobileLatencyMap(LatencyMap):
    """Distance-proportional RTT over live (moving) user positions."""

    def __init__(
        self,
        field: MobilityField,
        *,
        base_rtt: float = 0.0,
        seconds_per_unit: float = 0.1,
    ) -> None:
        if base_rtt < 0:
            raise ValueError(f"base_rtt must be >= 0, got {base_rtt}")
        if seconds_per_unit < 0:
            raise ValueError(
                f"seconds_per_unit must be >= 0, got {seconds_per_unit}"
            )
        self.field = field
        self.base_rtt = base_rtt
        self.seconds_per_unit = seconds_per_unit

    @classmethod
    def from_geo(
        cls,
        model: MobilityModel,
        geo: GeoLatencyMap,
        server_ids: list[str],
    ) -> "MobileLatencyMap":
        """Mobile map agreeing with *geo* on sites, scale and base RTT.

        Server positions are read through
        :meth:`~repro.fleet.latency.GeoLatencyMap.position`, so at the
        instant of construction the two maps price every (user, server)
        link with the same formula over the same server geography — the
        mobile map then diverges only because its users move.
        """
        field = MobilityField.from_geo(model, geo, server_ids)
        return cls(
            field,
            base_rtt=geo.base_rtt,
            seconds_per_unit=geo.seconds_per_unit,
        )

    def rtt(self, user_id: str, server_id: str) -> float:
        return self.base_rtt + self.seconds_per_unit * self.field.distance(
            user_id, server_id
        )

    def advance(self, dt: float) -> None:
        """Advance the underlying field: the map's answers move with it."""
        self.field.advance(dt)
