"""Shared hypothetical-deployment evaluation for fleet decisions.

Two fleet mechanisms must answer "what *would* this server's ``E + T``
be?" without touching planner state: cost-aware rebalancing (the gain of
a move is the drop in the two affected servers' modelled totals) and SLA
admission (a candidate server is feasible only if the newcomer's
modelled cost meets the deadline).  Before this module each would have
carried its own copy of the evaluation and the two modelled-latency
paths could drift; now both go through :func:`hypothetical_consumption`
— :meth:`repro.fleet.fleet.FleetServer.modelled_combined` is a thin
wrapper over it, and ``tests/test_forecast.py`` pins the agreement.

:func:`hypothetical_remote_parts` extends the same discipline to the
admission side: it replays :meth:`repro.mec.online.OnlinePlanner.admit`'s
greedy placement for a newcomer *without mutating the planner* (the
greedy itself is pure), so SLA feasibility evaluates the exact placement
the user would receive, not an approximation of it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import MobileDevice
from repro.mec.greedy import generate_offloading_scheme
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, SystemConsumption, UserContext

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.results import UserPlan
    from repro.fleet.fleet import FleetServer
    from repro.mec.objective import ObjectiveWeights

HypotheticalUser = tuple[
    MobileDevice, FunctionCallGraph, PartitionedApplication, set[int]
]
"""A user lifted out of (or held up to) a server: device, graph,
partitioned app, and remote part ids."""


def hypothetical_consumption(
    server: "FleetServer",
    *,
    without: str | None = None,
    extra: HypotheticalUser | None = None,
) -> SystemConsumption:
    """Consumption of *server*'s deployment under a hypothetical edit.

    Evaluates the server's current placements with *without* removed
    and/or *extra* (a user's device, graph, partitioned app and remote
    part set, typically lifted from another server or pre-placed by
    :func:`hypothetical_remote_parts`) added — no planner mutation, no
    greedy replay.  Returns an empty :class:`SystemConsumption` for an
    empty hypothetical deployment.

    This is the single modelled-``E + T`` evaluator behind *both*
    cost-aware rebalancing gains and SLA feasibility, so the two paths
    cannot drift.
    """
    state = server.planner.state
    users = [u for u in state.users if u.user_id != without]
    apps: dict[str, PartitionedApplication] = {
        uid: app for uid, app in state.apps.items() if uid != without
    }
    remote_parts: dict[str, set[int]] = {
        uid: parts for uid, parts in state.remote_parts.items() if uid != without
    }
    if extra is not None:
        device, graph, app, remote = extra
        users.append(UserContext(device, graph))
        apps[device.device_id] = app
        remote_parts[device.device_id] = remote
    if not users:
        return SystemConsumption()
    system = MECSystem(
        server.server,
        users,
        allocation=server.planner.allocation,
        channel=server.planner.channel,
    )
    return system.evaluate_placement(apps, remote_parts)


def hypothetical_remote_parts(
    server: "FleetServer",
    device: MobileDevice,
    graph: FunctionCallGraph,
    plan: "UserPlan",
) -> set[int]:
    """The remote part set *device* would receive if admitted on *server*.

    Replays the greedy placement of
    :meth:`~repro.mec.online.OnlinePlanner.admit` — newcomer's bisections
    as the only candidate moves, existing users frozen at their recorded
    placements — against copies of the planner's state.
    :func:`~repro.mec.greedy.generate_offloading_scheme` is pure, so the
    server is left exactly as found.
    """
    state = server.planner.state
    config = server.planner.config
    users = [*state.users, UserContext(device, graph)]
    apps = dict(state.apps)
    apps[device.device_id] = PartitionedApplication(
        device.device_id, graph, plan.parts
    )
    bisections: dict[str, list[tuple[set[int], set[int]]]] = {
        uid: [] for uid in state.apps
    }
    bisections[device.device_id] = plan.bisections
    system = MECSystem(
        server.server,
        users,
        allocation=server.planner.allocation,
        channel=server.planner.channel,
    )
    greedy = generate_offloading_scheme(
        system,
        apps,
        bisections,
        weights=config.objective,
        placement_mode=config.initial_placement_mode,
        frozen_remote=state.remote_parts,
    )
    return greedy.remote_parts[device.device_id]


def modelled_user_cost(
    server: "FleetServer",
    device: MobileDevice,
    graph: FunctionCallGraph,
    plan: "UserPlan",
    weights: "ObjectiveWeights",
    rtt: float = 0.0,
) -> float:
    """*device*'s modelled scalarised cost if admitted on *server*.

    Places the newcomer hypothetically (:func:`hypothetical_remote_parts`),
    evaluates the resulting deployment through
    :func:`hypothetical_consumption`, and returns the newcomer's own
    per-user ``E + T`` with the link *rtt* folded into the time term iff
    the placement offloads — mirroring how
    :meth:`~repro.fleet.fleet.EdgeFleet.total_consumption` charges RTT,
    so the admission check and the violation report speak one unit.
    """
    app = PartitionedApplication(device.device_id, graph, plan.parts)
    remote = hypothetical_remote_parts(server, device, graph, plan)
    consumption = hypothetical_consumption(
        server, extra=(device, graph, app, remote)
    )
    breakdown = consumption.per_user[device.device_id]
    time = breakdown.time
    if rtt > 0 and (breakdown.remote_time > 0 or breakdown.transmission_time > 0):
        time += rtt
    return weights.combine(breakdown.energy, time)
