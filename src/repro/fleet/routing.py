"""Pluggable user→server routing policies for the edge fleet.

A policy answers one question: *which server should admit this request?*
It sees the request's content fingerprint (computed by the fleet with
:func:`repro.service.fingerprint.request_fingerprint`) and a snapshot of
every eligible server's load, and returns a server id.  Five standard
disciplines are provided:

* :class:`RoundRobinRouting` — cycle through servers in order; perfectly
  balanced on uniform traffic, oblivious to load and to content.
* :class:`LeastLoadedRouting` — always pick the currently least-loaded
  server (join-the-shortest-queue); optimal balance, but every request
  consults global state and identical apps scatter across servers.
* :class:`PowerOfTwoRouting` — sample two servers, pick the less loaded
  (Mitzenmacher's power of two choices); near-JSQ balance with O(1)
  sampled state.
* :class:`FingerprintAffinityRouting` — consistent hashing over the
  request fingerprint, so structurally identical apps land on the same
  server and hit its plan cache; server removal only remaps the keys
  that lived on the removed server.
* :class:`ForecastRouting` — join the server with the lowest
  *forecasted* utilisation (:attr:`ServerLoad.predicted_utilisation`,
  filled from the fleet's telemetry), steering arrivals away from
  servers that are trending hot; falls back to current utilisation on
  a cold fleet.

The load-aware policies balance on a selectable metric
(``balance_on="users"`` counts admitted users; ``"utilisation"`` ranks
by offloaded work over server capacity, which is what heterogeneous
pools need — a 250-capacity shard with 5 users is *more* loaded than a
1000-capacity shard with 8) and can fold each candidate's
:attr:`ServerLoad.rtt` into the choice via *latency_weight*, trading
queue length against proximity.  Affinity accepts a *latency_slack*
that relaxes strict ring ownership toward nearby servers.

Policies are deliberately *stateless about users* — the fleet owns
admission — but may keep routing state (the round-robin position, the
hash ring, the sampling RNG), all deterministic from the constructor
arguments.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.utils.rng import RandomSource

BALANCE_METRICS = ("users", "utilisation")
"""Valid ``balance_on`` values for the load-aware policies."""


@dataclass(frozen=True)
class ServerLoad:
    """Point-in-time load snapshot of one fleet server."""

    server_id: str
    users: int
    """Admitted users — the balance metric of the acceptance criteria."""

    remote_load: float = 0.0
    """Total computation weight currently offloaded to this server."""

    capacity: float = 0.0
    """The server's total capacity (for utilisation-aware policies)."""

    rtt: float = 0.0
    """Round-trip time between the *requesting user* and this server.

    Filled per-request by the fleet from its
    :class:`~repro.fleet.latency.LatencyMap`; zero under the default
    single-site model.
    """

    predicted_utilisation: float | None = None
    """Forecasted utilisation a few ticks out, filled by the fleet from
    its :class:`~repro.forecast.proactive.FleetTelemetry` when one is
    attached; ``None`` when the fleet does not forecast (or the series
    has no history yet).  Only :class:`ForecastRouting` consults it."""

    @property
    def utilisation(self) -> float:
        """remote_load / capacity; 0.0 for an unprovisioned server."""
        if self.capacity <= 0:
            return 0.0
        return self.remote_load / self.capacity


def _check_balance_on(balance_on: str) -> str:
    if balance_on not in BALANCE_METRICS:
        raise ValueError(
            f"unknown balance metric {balance_on!r}; "
            f"expected one of {list(BALANCE_METRICS)}"
        )
    return balance_on


def _load_key(
    load: ServerLoad, balance_on: str, latency_weight: float
) -> tuple[float, float, float, str]:
    """Total order for "less loaded": metric (+ weighted RTT), then ties.

    With ``balance_on="users"`` and ``latency_weight=0`` this reduces to
    the classic ``(users, remote_load, server_id)`` JSQ key; utilisation
    mode ranks by offloaded-work share first so heterogeneous capacities
    are respected, falling back to user counts on utilisation ties (an
    empty fleet has utilisation 0 everywhere).
    """
    penalty = latency_weight * load.rtt
    if balance_on == "utilisation":
        return (load.utilisation + penalty, float(load.users), load.remote_load, load.server_id)
    return (float(load.users) + penalty, load.remote_load, 0.0, load.server_id)


class RoutingPolicy(abc.ABC):
    """Strategy deciding which server admits a plan request."""

    name: str = "custom"

    @abc.abstractmethod
    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        """Return the chosen server id for the request named *key*.

        *servers* is non-empty and lists only eligible (alive, below
        any user cap) servers; the fleet raises before calling a policy
        with nothing to choose from.
        """

    def forget(self, server_id: str) -> None:
        """Drop any routing state tied to *server_id* (failover hook)."""


class RoundRobinRouting(RoutingPolicy):
    """Cycle through the eligible servers in sorted-id order.

    The cursor tracks the *last-served server id*, not a raw counter:
    each route picks the smallest eligible id strictly greater than the
    last one (wrapping around), so every pass visits every eligible
    server exactly once even while the eligible set grows and shrinks.
    A counter taken modulo a changing set size skips or double-hits
    servers whenever eligibility changes between calls.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last: str | None = None

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        ordered = sorted(server.server_id for server in servers)
        if self._last is None:
            choice = ordered[0]
        else:
            index = bisect.bisect_right(ordered, self._last)
            choice = ordered[index % len(ordered)]
        self._last = choice
        return choice

    def forget(self, server_id: str) -> None:
        # The cursor is an id watermark, not an index: a dead server's id
        # still orders correctly against the survivors, so nothing to do.
        pass


class LeastLoadedRouting(RoutingPolicy):
    """Join the shortest queue on the configured balance metric.

    ``balance_on="users"`` (default) is the classic fewest-users JSQ
    with ties by remote load then id; ``"utilisation"`` joins the server
    with the lowest offloaded-work/capacity ratio, which balances
    *work* rather than *headcount* across heterogeneous capacities.  A
    positive *latency_weight* adds ``weight * rtt`` to each candidate's
    metric, steering users toward nearby servers when queues are close.
    """

    name = "least-loaded"

    def __init__(
        self, balance_on: str = "users", latency_weight: float = 0.0
    ) -> None:
        self.balance_on = _check_balance_on(balance_on)
        self.latency_weight = latency_weight

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        best = min(
            servers, key=lambda s: _load_key(s, self.balance_on, self.latency_weight)
        )
        return best.server_id


class PowerOfTwoRouting(RoutingPolicy):
    """Sample two servers uniformly, admit on the less loaded one.

    The classic load-balancing result: two random choices reduce the
    maximum load from ``Θ(log n / log log n)`` to ``Θ(log log n)``
    relative to one random choice, while touching only two servers'
    state per decision.  The sampling stream is deterministic from
    *seed*, so traces replay identically.  The pairwise comparison uses
    the same *balance_on* / *latency_weight* key as
    :class:`LeastLoadedRouting`.
    """

    name = "power-of-two"

    def __init__(
        self, seed: int = 0, balance_on: str = "users", latency_weight: float = 0.0
    ) -> None:
        self._rng = RandomSource(seed).spawn("power-of-two")
        self.balance_on = _check_balance_on(balance_on)
        self.latency_weight = latency_weight

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        ordered = sorted(servers, key=lambda s: s.server_id)
        if len(ordered) == 1:
            return ordered[0].server_id
        first, second = self._rng.sample(ordered, 2)
        best = min(
            (first, second),
            key=lambda s: _load_key(s, self.balance_on, self.latency_weight),
        )
        return best.server_id


class ForecastRouting(RoutingPolicy):
    """Join the server with the lowest *forecasted* utilisation.

    Where :class:`LeastLoadedRouting` balances on the load a server has
    *now*, this policy balances on the load the fleet's telemetry
    predicts it will have a few ticks out
    (:attr:`ServerLoad.predicted_utilisation`), steering arrivals away
    from servers that are still cool but trending hot.  Candidates
    without a forecast fall back to their current utilisation, so the
    policy degrades to utilisation-balanced JSQ on a cold fleet or a
    fleet without telemetry.  A positive *latency_weight* folds each
    candidate's RTT into the choice, as in the other load-aware
    policies.
    """

    name = "forecast"

    def __init__(self, latency_weight: float = 0.0) -> None:
        self.latency_weight = latency_weight

    def _key(self, load: ServerLoad) -> tuple[float, float, float, str]:
        outlook = load.predicted_utilisation
        if outlook is None:
            outlook = load.utilisation
        return (
            outlook + self.latency_weight * load.rtt,
            float(load.users),
            load.remote_load,
            load.server_id,
        )

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        return min(servers, key=self._key).server_id


def _ring_hash(value: str) -> int:
    """Stable 64-bit position on the hash ring."""
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class FingerprintAffinityRouting(RoutingPolicy):
    """Consistent hashing on the request fingerprint.

    Requests are routed by hashing their content fingerprint (the same
    key :class:`~repro.service.plan_cache.PlanCache` uses) onto a ring
    of virtual nodes, so structurally identical apps land on the same
    server and hit its plan cache — the fleet-wide hit rate matches a
    single shared cache, without sharing anything.  ``replicas``
    virtual nodes per server smooth the key distribution; removing a
    server (failover) remaps only the keys that lived on it.

    *latency_slack* trades that cache locality against proximity: when
    set, candidates are considered in ring order (the affinity
    preference) and the first whose RTT is within *latency_slack* of
    the nearest server wins.  ``None`` (default) is strict ring
    ownership; ``0.0`` always picks the nearest server, breaking ties
    by ring order.
    """

    name = "affinity"

    def __init__(self, replicas: int = 64, latency_slack: float | None = None) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if latency_slack is not None and latency_slack < 0:
            raise ValueError(f"latency_slack must be >= 0, got {latency_slack}")
        self.replicas = replicas
        self.latency_slack = latency_slack
        self._ring: list[tuple[int, str]] = []
        self._members: frozenset[str] = frozenset()

    def _rebuild(self, server_ids: frozenset[str]) -> None:
        ring = [
            (_ring_hash(f"{server_id}#{replica}"), server_id)
            for server_id in server_ids
            for replica in range(self.replicas)
        ]
        ring.sort()
        self._ring = ring
        self._members = server_ids

    def _ring_order(self, index: int) -> list[str]:
        """Distinct server ids in clockwise ring order from *index*."""
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._ring)):
            server_id = self._ring[(index + offset) % len(self._ring)][1]
            if server_id not in seen:
                seen.add(server_id)
                order.append(server_id)
        return order

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        members = frozenset(server.server_id for server in servers)
        if members != self._members:
            self._rebuild(members)
        positions = [position for position, _ in self._ring]
        index = bisect.bisect_right(positions, _ring_hash(key)) % len(self._ring)
        if self.latency_slack is None:
            return self._ring[index][1]
        rtts = {server.server_id: server.rtt for server in servers}
        nearest = min(rtts.values())
        for server_id in self._ring_order(index):
            if rtts[server_id] <= nearest + self.latency_slack:
                return server_id
        return self._ring[index][1]  # pragma: no cover - nearest always qualifies

    def forget(self, server_id: str) -> None:
        if server_id in self._members:
            self._rebuild(self._members - {server_id})


ROUTING_POLICIES = ("affinity", "forecast", "least-loaded", "power-of-two", "round-robin")
"""Registered policy names, for CLIs and experiment sweeps."""


def make_routing_policy(
    name: str,
    seed: int = 0,
    *,
    balance_on: str = "users",
    latency_weight: float = 0.0,
    latency_slack: float | None = None,
) -> RoutingPolicy:
    """Build a routing policy by registered name.

    *balance_on* and *latency_weight* configure the load-aware policies
    (least-loaded, power-of-two); *latency_slack* configures affinity's
    proximity trade-off.  Options irrelevant to the chosen policy are
    ignored, so sweeps can pass one option set to every name.

    >>> make_routing_policy("affinity").name
    'affinity'
    """
    if name == "round-robin":
        return RoundRobinRouting()
    if name == "forecast":
        return ForecastRouting(latency_weight=latency_weight)
    if name == "least-loaded":
        return LeastLoadedRouting(balance_on=balance_on, latency_weight=latency_weight)
    if name == "power-of-two":
        return PowerOfTwoRouting(
            seed, balance_on=balance_on, latency_weight=latency_weight
        )
    if name == "affinity":
        return FingerprintAffinityRouting(latency_slack=latency_slack)
    raise ValueError(
        f"unknown routing policy {name!r}; expected one of {list(ROUTING_POLICIES)}"
    )
