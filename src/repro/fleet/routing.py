"""Pluggable user→server routing policies for the edge fleet.

A policy answers one question: *which server should admit this request?*
It sees the request's content fingerprint (computed by the fleet with
:func:`repro.service.fingerprint.request_fingerprint`) and a snapshot of
every eligible server's load, and returns a server id.  Four standard
disciplines are provided:

* :class:`RoundRobinRouting` — cycle through servers in order; perfectly
  balanced on uniform traffic, oblivious to load and to content.
* :class:`LeastLoadedRouting` — always pick the currently least-loaded
  server (join-the-shortest-queue); optimal balance, but every request
  consults global state and identical apps scatter across servers.
* :class:`PowerOfTwoRouting` — sample two servers, pick the less loaded
  (Mitzenmacher's power of two choices); near-JSQ balance with O(1)
  sampled state.
* :class:`FingerprintAffinityRouting` — consistent hashing over the
  request fingerprint, so structurally identical apps land on the same
  server and hit its plan cache; server removal only remaps the keys
  that lived on the removed server.

Policies are deliberately *stateless about users* — the fleet owns
admission — but may keep routing state (the round-robin cursor, the
hash ring, the sampling RNG), all deterministic from the constructor
arguments.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class ServerLoad:
    """Point-in-time load snapshot of one fleet server."""

    server_id: str
    users: int
    """Admitted users — the balance metric of the acceptance criteria."""

    remote_load: float = 0.0
    """Total computation weight currently offloaded to this server."""

    capacity: float = 0.0
    """The server's total capacity (for utilisation-aware policies)."""

    @property
    def utilisation(self) -> float:
        """remote_load / capacity; 0.0 for an unprovisioned server."""
        if self.capacity <= 0:
            return 0.0
        return self.remote_load / self.capacity


class RoutingPolicy(abc.ABC):
    """Strategy deciding which server admits a plan request."""

    name: str = "custom"

    @abc.abstractmethod
    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        """Return the chosen server id for the request named *key*.

        *servers* is non-empty and lists only eligible (alive, below
        any user cap) servers; the fleet raises before calling a policy
        with nothing to choose from.
        """

    def forget(self, server_id: str) -> None:
        """Drop any routing state tied to *server_id* (failover hook)."""


class RoundRobinRouting(RoutingPolicy):
    """Cycle through the eligible servers in sorted-id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        ordered = sorted(server.server_id for server in servers)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice


class LeastLoadedRouting(RoutingPolicy):
    """Join the shortest queue: fewest users, ties by remote load then id."""

    name = "least-loaded"

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        best = min(servers, key=lambda s: (s.users, s.remote_load, s.server_id))
        return best.server_id


class PowerOfTwoRouting(RoutingPolicy):
    """Sample two servers uniformly, admit on the less loaded one.

    The classic load-balancing result: two random choices reduce the
    maximum load from ``Θ(log n / log log n)`` to ``Θ(log log n)``
    relative to one random choice, while touching only two servers'
    state per decision.  The sampling stream is deterministic from
    *seed*, so traces replay identically.
    """

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        self._rng = RandomSource(seed).spawn("power-of-two")

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        ordered = sorted(servers, key=lambda s: s.server_id)
        if len(ordered) == 1:
            return ordered[0].server_id
        first, second = self._rng.sample(ordered, 2)
        best = min((first, second), key=lambda s: (s.users, s.remote_load, s.server_id))
        return best.server_id


def _ring_hash(value: str) -> int:
    """Stable 64-bit position on the hash ring."""
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class FingerprintAffinityRouting(RoutingPolicy):
    """Consistent hashing on the request fingerprint.

    Requests are routed by hashing their content fingerprint (the same
    key :class:`~repro.service.plan_cache.PlanCache` uses) onto a ring
    of virtual nodes, so structurally identical apps always land on the
    same server and hit its plan cache — the fleet-wide hit rate matches
    a single shared cache, without sharing anything.  ``replicas``
    virtual nodes per server smooth the key distribution; removing a
    server (failover) remaps only the keys that lived on it.
    """

    name = "affinity"

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._members: frozenset[str] = frozenset()

    def _rebuild(self, server_ids: frozenset[str]) -> None:
        ring = [
            (_ring_hash(f"{server_id}#{replica}"), server_id)
            for server_id in server_ids
            for replica in range(self.replicas)
        ]
        ring.sort()
        self._ring = ring
        self._members = server_ids

    def route(self, key: str, servers: Sequence[ServerLoad]) -> str:
        members = frozenset(server.server_id for server in servers)
        if members != self._members:
            self._rebuild(members)
        positions = [position for position, _ in self._ring]
        index = bisect.bisect_right(positions, _ring_hash(key)) % len(self._ring)
        return self._ring[index][1]

    def forget(self, server_id: str) -> None:
        if server_id in self._members:
            self._rebuild(self._members - {server_id})


_POLICY_BUILDERS: dict[str, Callable[[int], RoutingPolicy]] = {
    "round-robin": lambda seed: RoundRobinRouting(),
    "least-loaded": lambda seed: LeastLoadedRouting(),
    "power-of-two": lambda seed: PowerOfTwoRouting(seed),
    "affinity": lambda seed: FingerprintAffinityRouting(),
}

ROUTING_POLICIES = tuple(sorted(_POLICY_BUILDERS))
"""Registered policy names, for CLIs and experiment sweeps."""


def make_routing_policy(name: str, seed: int = 0) -> RoutingPolicy:
    """Build a routing policy by registered name.

    >>> make_routing_policy("affinity").name
    'affinity'
    """
    if name not in _POLICY_BUILDERS:
        raise ValueError(
            f"unknown routing policy {name!r}; expected one of {list(ROUTING_POLICIES)}"
        )
    return _POLICY_BUILDERS[name](seed)
