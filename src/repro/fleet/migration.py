"""Pricing a user's move between fleet servers.

The original rebalancer replayed a user's cached plan on the target
server *for free*, as if the offloaded state teleported.  In a real
deployment a migration re-transmits the offloaded input data over the
user's uplink to the new server and pays a control-plane handoff delay —
the component-movement cost that online edge-placement models
(arXiv:1605.08023) charge before approving a move.

:class:`MigrationCostModel` prices one move from the quantities the
paper's model already tracks: the *data* crossing the device/server
boundary under the user's current placement (the cut weight — exactly
what was transmitted to the old server and must be re-sent to the new
one) at the user's link rate, plus a configurable handoff latency.  The
result maps onto the paper's consumption vocabulary as a
:class:`~repro.mec.energy.ConsumptionBreakdown` whose only non-zero
terms are transmission (the re-send) and waiting (the handoff), so
fleet-wide ``E + T`` accounting absorbs migrations without any new
formula: see :meth:`repro.fleet.fleet.EdgeFleet.total_consumption`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mec.devices import MobileDevice
from repro.mec.energy import (
    ConsumptionBreakdown,
    transmission_energy,
    transmission_time,
)
from repro.mec.objective import ObjectiveWeights


@dataclass(frozen=True)
class MigrationCost:
    """The priced cost of moving one admitted user between servers."""

    data_units: float
    """Offloaded input data re-transmitted to the target server."""

    transmission_time: float
    """Re-send time at the user's link rate (formula (5) on the data)."""

    transmission_energy: float
    """Re-send energy at the user's transmit power (formula (4))."""

    handoff_latency: float
    """Control-plane delay of switching servers (waiting-time term)."""

    @property
    def time(self) -> float:
        """Total time charge: re-transmission plus handoff waiting."""
        return self.transmission_time + self.handoff_latency

    @property
    def energy(self) -> float:
        """Total energy charge (the handoff consumes no device energy)."""
        return self.transmission_energy

    def combined(self, weights: ObjectiveWeights | None = None) -> float:
        """The move's price in the planner's ``E + T`` currency."""
        weights = weights or ObjectiveWeights()
        return weights.combine(self.energy, self.time)

    def as_breakdown(self) -> ConsumptionBreakdown:
        """The cost in consumption-ledger form, ready to add to a user.

        The re-send lands in the transmission terms and the handoff in
        the waiting term (mirrored into the waiting-inclusive remote
        time, preserving the formula-(2) invariant that ``remote_time``
        already contains ``t_w``), so ``breakdown.time`` and
        ``breakdown.energy`` equal :attr:`time` and :attr:`energy`.
        """
        return ConsumptionBreakdown(
            local_energy=0.0,
            transmission_energy=self.transmission_energy,
            local_time=0.0,
            remote_time=self.handoff_latency,
            transmission_time=self.transmission_time,
            waiting_time=self.handoff_latency,
        )


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices moves as re-transmission at the link rate plus a handoff.

    *data_scale* rescales the cut weight into re-sent data units (1.0
    treats the boundary-crossing communication weight as the offloaded
    input payload, the same reading formulas (4)/(5) use); a
    *handoff_latency* of zero with *data_scale* zero prices every move
    at nothing — the pre-migration "state teleports" behaviour, kept
    reachable as :meth:`free` for baselines and A/B benchmarks.
    """

    handoff_latency: float = 0.05
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.handoff_latency < 0:
            raise ValueError(
                f"handoff_latency must be >= 0, got {self.handoff_latency}"
            )
        if self.data_scale < 0:
            raise ValueError(f"data_scale must be >= 0, got {self.data_scale}")

    @classmethod
    def free(cls) -> "MigrationCostModel":
        """A model pricing every move at zero (the legacy behaviour)."""
        return cls(handoff_latency=0.0, data_scale=0.0)

    def cost(self, device: MobileDevice, data_units: float) -> MigrationCost:
        """Price moving *device*'s offloaded state to a new server.

        *data_units* is the offloaded input data under the user's
        current placement (the fleet passes the placement's cut weight);
        the re-send runs at the device's own uplink rate and transmit
        power — the "target link rate" is the same radio the original
        upload used.
        """
        if data_units < 0:
            raise ValueError(f"data_units must be >= 0, got {data_units}")
        data = data_units * self.data_scale
        if data > 0:
            t_t = transmission_time(data, device.bandwidth)
            e_t = transmission_energy(data, device.power_transmit, device.bandwidth)
        else:
            t_t = 0.0
            e_t = 0.0
        return MigrationCost(
            data_units=data,
            transmission_time=t_t,
            transmission_energy=e_t,
            handoff_latency=self.handoff_latency,
        )
