"""Per-(user, server) network latency for geo-aware fleet routing.

The paper's model has one edge server, so proximity never appears: every
user talks to ``S`` over the same link.  A fleet spreads servers across
sites, and the round-trip time between a user and a *candidate* server
becomes a placement signal in its own right — a plan cached on a far
server may cost more in propagation delay than replanning nearby (the
placement trade-off of arXiv:1605.08023's edge-placement model).

A :class:`LatencyMap` answers one question: *what is the RTT between
this user and this server?*  The fleet threads the answer through
:class:`~repro.fleet.routing.ServerLoad` snapshots (so routing policies
can fold proximity into their choice) and into waiting-time accounting
(an offloading user's remote and waiting time both carry the RTT of the
link they actually use; see :meth:`repro.fleet.fleet.EdgeFleet.total_consumption`).

Three implementations:

* :class:`ZeroLatency` — the single-site default; RTT is identically
  zero and the fleet behaves exactly as before this module existed.
* :class:`StaticLatencyMap` — explicit per-pair and per-server RTTs,
  for tests and measured topologies.
* :class:`GeoLatencyMap` — ids are placed on the unit square (explicit
  positions, or a deterministic content hash of the id for everything
  else) and RTT grows linearly with Euclidean distance.  Hash placement
  keeps the map dependency-free and reproducible without any RNG state.
"""

from __future__ import annotations

import abc
import hashlib
import math
from collections.abc import Mapping


class LatencyMap(abc.ABC):
    """Pluggable per-(user, server) round-trip-time oracle."""

    @abc.abstractmethod
    def rtt(self, user_id: str, server_id: str) -> float:
        """Round-trip time (seconds) between *user_id* and *server_id*."""


class ZeroLatency(LatencyMap):
    """Every link is free: the single-site (pre-geo) fleet behaviour."""

    def rtt(self, user_id: str, server_id: str) -> float:
        return 0.0


class StaticLatencyMap(LatencyMap):
    """Explicit RTTs: per (user, server) pair, per server, then a default.

    Lookup order is most-specific-first: an exact ``(user_id, server_id)``
    entry wins, then the server's base RTT, then *default*.

    >>> lat = StaticLatencyMap({("u1", "edge-00"): 0.2}, {"edge-01": 0.05})
    >>> lat.rtt("u1", "edge-00"), lat.rtt("u2", "edge-01"), lat.rtt("u2", "x")
    (0.2, 0.05, 0.0)
    """

    def __init__(
        self,
        pairs: Mapping[tuple[str, str], float] | None = None,
        server_rtt: Mapping[str, float] | None = None,
        default: float = 0.0,
    ) -> None:
        if default < 0:
            raise ValueError(f"default RTT must be >= 0, got {default}")
        self._pairs = dict(pairs or {})
        self._server_rtt = dict(server_rtt or {})
        self._default = default
        # Validate each table entry-by-entry.  Merging the two tables
        # into one dict keyed by server id (the old approach) let a
        # negative (user, server) pair RTT hide behind any other entry
        # sharing that server id, because the merge kept only one value
        # per server.
        for server_id, value in self._server_rtt.items():
            if value < 0:
                raise ValueError(
                    f"RTT for server {server_id!r} must be >= 0, got {value}"
                )
        for (user_id, server_id), value in self._pairs.items():
            if value < 0:
                raise ValueError(
                    f"RTT for pair ({user_id!r}, {server_id!r}) must be >= 0, "
                    f"got {value}"
                )

    def rtt(self, user_id: str, server_id: str) -> float:
        pair = self._pairs.get((user_id, server_id))
        if pair is not None:
            return pair
        return self._server_rtt.get(server_id, self._default)


def _hash_position(node_id: str, seed: int | None = None) -> tuple[float, float]:
    """Deterministic position on the unit square from the id's content.

    Uses sha256 (not ``hash()``, which is salted per process), so the
    placement is stable across runs and machines — the same determinism
    contract as the fingerprint ring in
    :class:`~repro.fleet.routing.FingerprintAffinityRouting`.  A *seed*
    salts the hash input, giving a different (but equally reproducible)
    geography per seed; ``None`` preserves the legacy unsalted layout.
    """
    token = node_id if seed is None else f"{seed}:{node_id}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    x = int.from_bytes(digest[:8], "big") / 2**64
    y = int.from_bytes(digest[8:16], "big") / 2**64
    return (x, y)


class GeoLatencyMap(LatencyMap):
    """RTT proportional to Euclidean distance on the unit square.

    ``rtt = base_rtt + seconds_per_unit * distance(user, server)``; the
    distance is between the two ids' positions, taken from *positions*
    when given and otherwise derived deterministically from the id via a
    content hash (so arbitrary trace user ids spread over the square
    without any configuration or RNG).  *seconds_per_unit* is the
    round-trip propagation cost of crossing the whole square once.
    """

    def __init__(
        self,
        positions: Mapping[str, tuple[float, float]] | None = None,
        *,
        base_rtt: float = 0.0,
        seconds_per_unit: float = 0.1,
        seed: int | None = None,
    ) -> None:
        if base_rtt < 0:
            raise ValueError(f"base_rtt must be >= 0, got {base_rtt}")
        if seconds_per_unit < 0:
            raise ValueError(
                f"seconds_per_unit must be >= 0, got {seconds_per_unit}"
            )
        self._positions = dict(positions or {})
        self.base_rtt = base_rtt
        self.seconds_per_unit = seconds_per_unit
        self.seed = seed

    def position(self, node_id: str) -> tuple[float, float]:
        """The id's position: explicit if configured, hash-derived otherwise."""
        explicit = self._positions.get(node_id)
        if explicit is not None:
            return explicit
        return _hash_position(node_id, self.seed)

    def rtt(self, user_id: str, server_id: str) -> float:
        ux, uy = self.position(user_id)
        sx, sy = self.position(server_id)
        return self.base_rtt + self.seconds_per_unit * math.hypot(ux - sx, uy - sy)


LATENCY_MODELS = ("none", "geo")
"""Registered latency-model names, for CLIs and experiment sweeps."""


def make_latency_map(
    name: str,
    *,
    base_rtt: float = 0.0,
    seconds_per_unit: float = 0.1,
    seed: int | None = None,
) -> LatencyMap:
    """Build a latency map by registered name.

    *seed* re-seeds the geo model's hash geography (``None`` keeps the
    legacy unsalted layout); the other models ignore it.

    >>> make_latency_map("none").rtt("u", "s")
    0.0
    """
    if name == "none":
        return ZeroLatency()
    if name == "geo":
        return GeoLatencyMap(
            base_rtt=base_rtt, seconds_per_unit=seconds_per_unit, seed=seed
        )
    raise ValueError(
        f"unknown latency model {name!r}; expected one of {list(LATENCY_MODELS)}"
    )
