"""The edge fleet: a pool of servers, each with its own planner and cache.

The paper (and every module below this one) models a *single* edge
server ``S``.  :class:`EdgeFleet` scales that model horizontally: each
:class:`FleetServer` is one paper-faithful deployment — an
:class:`~repro.mec.devices.EdgeServer` with its own
:class:`~repro.mec.online.OnlinePlanner` state and
:class:`~repro.service.plan_cache.PlanCache` — and a pluggable
:class:`~repro.fleet.routing.RoutingPolicy` decides which server admits
each arriving user.  Per-server results therefore remain exactly the
paper's COPMECS model; the fleet layer adds what the model cannot say:
load balance across heterogeneous servers, cache locality under
content-affine routing, geo-latency, cost-aware rebalancing, and
failover (see :mod:`repro.fleet.failover`).

Consumption aggregates across the fleet by merging per-user breakdowns:
user ids are fleet-unique, so the union of every server's
:class:`~repro.mec.system.SystemConsumption` *is* the fleet total, plus
the all-local consumption of users admitted in degraded mode (no server
had capacity for them).  Two fleet-only charges are folded into the
same ledger: each offloading user carries the RTT of the link they
actually use (:mod:`repro.fleet.latency`), and users who were migrated
between servers carry the accumulated migration cost
(:mod:`repro.fleet.migration`) in their transmission/waiting terms —
moves are never free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.fleet.latency import LatencyMap, ZeroLatency
from repro.fleet.migration import MigrationCost, MigrationCostModel
from repro.fleet.modelled import hypothetical_consumption, modelled_user_cost
from repro.fleet.routing import RoutingPolicy, RoundRobinRouting, ServerLoad
from repro.forecast.proactive import DEFAULT_UTILISATION_THRESHOLD, FleetTelemetry
from repro.forecast.sla import SLAReport, UserSLA
from repro.mec.admission import AllocationPolicy
from repro.mec.channel import SharedChannel
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.energy import ConsumptionBreakdown, local_compute_time, local_energy
from repro.mec.online import AdmissionRecord, OnlinePlanner
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import SystemConsumption
from repro.service.fingerprint import request_fingerprint
from repro.service.metrics import MetricsRegistry
from repro.service.plan_cache import PlanCache

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import PlannerConfig
    from repro.core.results import CutStrategy, UserPlan
    from repro.mec.objective import ObjectiveWeights
    from repro.mobility.handover import HandoverDecision, HandoverPolicy
    from repro.service.executor import PlanningBackend


def all_local_breakdown(device: MobileDevice, graph: FunctionCallGraph) -> ConsumptionBreakdown:
    """Degraded-mode consumption: the whole application runs on-device.

    This is the paper's no-offloading baseline — formulas (1) and (3)
    with every function local — and the fleet's fallback when no server
    has capacity left.  Always finite: no transmission, no waiting.
    """
    t_c = local_compute_time(graph.total_computation(), device.compute_capacity)
    return ConsumptionBreakdown(
        local_energy=local_energy(t_c, device.power_compute),
        transmission_energy=0.0,
        local_time=t_c,
        remote_time=0.0,
        transmission_time=0.0,
        waiting_time=0.0,
    )


@dataclass
class _AdmittedUser:
    """Everything a server must remember to re-admit a user elsewhere."""

    device: MobileDevice
    graph: FunctionCallGraph
    key: str
    plan: "UserPlan"


@dataclass
class _DegradedUser:
    """A user running all-local, retained so it can be re-admitted later."""

    device: MobileDevice
    graph: FunctionCallGraph
    breakdown: ConsumptionBreakdown
    sla: UserSLA | None = None


@dataclass
class FleetAdmission:
    """Outcome of one fleet admission."""

    user_id: str
    server_id: str | None
    """The admitting server; ``None`` when the user fell back to local."""

    record: AdmissionRecord | None
    cache_hit: bool = False
    degraded: bool = False
    rejected: bool = False
    """SLA admission control turned the user away (``on_infeasible=
    "reject"`` and no feasible server); the user is not in the fleet."""


class FleetServer:
    """One edge server plus its planner state and content-addressed cache."""

    def __init__(
        self,
        server_id: str,
        server: EdgeServer,
        cut_strategy: "CutStrategy",
        config: "PlannerConfig | None" = None,
        allocation: AllocationPolicy | None = None,
        cache_capacity: int = 256,
        channel: SharedChannel | None = None,
    ) -> None:
        self.server_id = server_id
        self.server = server
        self._cut_strategy = cut_strategy
        self._config = config
        self._allocation = allocation
        self._channel = channel
        self.planner = OnlinePlanner(
            server, cut_strategy, config=config, allocation=allocation, channel=channel
        )
        self.cache = PlanCache(capacity=cache_capacity)
        self.admitted: dict[str, _AdmittedUser] = {}

    @property
    def users(self) -> int:
        return len(self.admitted)

    @property
    def remote_load(self) -> float:
        """Total computation weight currently offloaded to this server."""
        state = self.planner.state
        return sum(
            state.apps[user_id].remote_weight(state.remote_parts.get(user_id, set()))
            for user_id in state.apps
        )

    @property
    def utilisation(self) -> float:
        """remote_load / capacity (the heterogeneous balance metric)."""
        return self.remote_load / self.server.total_capacity

    def load(
        self, rtt: float = 0.0, predicted_utilisation: float | None = None
    ) -> ServerLoad:
        return ServerLoad(
            server_id=self.server_id,
            users=self.users,
            remote_load=self.remote_load,
            capacity=self.server.total_capacity,
            rtt=rtt,
            predicted_utilisation=predicted_utilisation,
        )

    def placement_of(self, user_id: str) -> tuple[PartitionedApplication, set[int]]:
        """The user's partitioned app and currently-remote part ids."""
        state = self.planner.state
        return state.apps[user_id], state.remote_parts.get(user_id, set())

    def offloaded_data(self, user_id: str) -> float:
        """Data crossing the device/server boundary for *user_id*.

        This is the placement's cut weight — the offloaded input data a
        migration would have to re-transmit to a new server.
        """
        app, remote = self.placement_of(user_id)
        return app.cut_weight(remote)

    def modelled_combined(
        self,
        weights: "ObjectiveWeights",
        *,
        without: str | None = None,
        extra: tuple[MobileDevice, FunctionCallGraph, PartitionedApplication, set[int]]
        | None = None,
    ) -> float:
        """Hypothetical ``E + T`` of this server's deployment.

        Evaluates the current placements with *without* removed and/or
        *extra* (a user's device, graph, partitioned app and remote part
        set, typically lifted from another server) added — no planner
        mutation, no greedy replay.  This is the model behind cost-aware
        rebalancing: the gain of a move is the drop in the two affected
        servers' modelled totals.  The evaluation itself lives in
        :func:`repro.fleet.modelled.hypothetical_consumption`, the single
        helper SLA feasibility also calls — the two modelled-latency
        paths cannot drift.
        """
        return hypothetical_consumption(self, without=without, extra=extra).combined(
            weights
        )

    def admit(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        key: str,
        plan: "UserPlan | None" = None,
        fallback_plan: "UserPlan | None" = None,
    ) -> tuple[AdmissionRecord, bool]:
        """Admit one user, serving the plan from this server's cache.

        Returns ``(record, cache_hit)``.  A *plan* passed explicitly
        (rebalance/failover replay) bypasses the cache lookup — the move
        is not a request, so it must not distort hit-rate statistics —
        but still populates the cache for future arrivals.  A
        *fallback_plan* (batch pre-planning) is only used after a cache
        miss, so hit-rate statistics stay identical to planning inline;
        planning is deterministic, so the result is identical too.
        """
        cache_hit = False
        if plan is None:
            plan = self.cache.get(key)
            cache_hit = plan is not None
            if plan is None:
                plan = fallback_plan
        record = self.planner.admit(device, graph, plan=plan)
        self.cache.put(key, record.plan)
        self.admitted[device.device_id] = _AdmittedUser(device, graph, key, record.plan)
        return record, cache_hit

    def evict(self, user_id: str) -> _AdmittedUser:
        """Remove one user, rebuilding the planner state from the rest.

        :class:`OnlinePlanner` freezes placements and cannot un-admit,
        so eviction replays the surviving users (in admission order,
        with their recorded plans — no compress/cut work) into a fresh
        planner.  Greedy placement re-runs, which is the point: the
        survivors reclaim the evicted user's share of the server.
        """
        entry = self.admitted.pop(user_id, None)
        if entry is None:
            raise KeyError(f"user {user_id!r} not admitted on {self.server_id!r}")
        survivors = list(self.admitted.values())
        self.planner = OnlinePlanner(
            self.server,
            self._cut_strategy,
            config=self._config,
            allocation=self._allocation,
            channel=self._channel,
        )
        for survivor in survivors:
            self.planner.admit(survivor.device, survivor.graph, plan=survivor.plan)
        return entry

    def drain(self) -> list[_AdmittedUser]:
        """Remove and return every admitted user (outage path)."""
        drained = list(self.admitted.values())
        self.admitted.clear()
        self.planner = OnlinePlanner(
            self.server,
            self._cut_strategy,
            config=self._config,
            allocation=self._allocation,
            channel=self._channel,
        )
        return drained

    def current_consumption(self) -> SystemConsumption:
        if not self.admitted:
            return SystemConsumption()
        return self.planner.current_consumption()


@dataclass
class TickReport:
    """Outcome of one :meth:`EdgeFleet.tick`: who handed over, at what price."""

    tick: int
    """The fleet's tick counter after this tick ran (1-based)."""

    dt: float
    """Simulated seconds the mobility field advanced by."""

    handovers: list["HandoverDecision"] = field(default_factory=list)
    """Executed handovers, in the (sorted-user) order they ran."""

    migration_cost: float = 0.0
    """Combined ``E + T`` charged into migration debt by this tick's moves."""

    @property
    def moves(self) -> int:
        return len(self.handovers)


@dataclass
class FleetStats:
    """Point-in-time fleet counters (see :meth:`EdgeFleet.stats`)."""

    servers: int
    users: int
    degraded_users: int
    cache_hits: int
    cache_misses: int
    per_server_users: dict[str, int] = field(default_factory=dict)
    per_server_utilisation: dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def imbalance(self) -> float:
        """max/mean admitted users across alive servers (1.0 = perfect)."""
        counts = list(self.per_server_users.values())
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    @property
    def utilisation_imbalance(self) -> float:
        """max/mean server utilisation — the balance metric that matters
        on heterogeneous pools, where equal user counts can still mean a
        drastically overloaded small server (1.0 = perfect)."""
        values = list(self.per_server_utilisation.values())
        if not values or sum(values) == 0:
            return 1.0
        mean = sum(values) / len(values)
        return max(values) / mean


class EdgeFleet:
    """A pool of edge servers behind one admission front-end.

    Servers are homogeneous by default (``n_servers`` servers of
    ``capacity_per_server`` each); pass *capacities* (one total capacity
    per server, e.g. ``[250, 500, 1000]``) or *servers* for a
    heterogeneous pool.  Every admission computes the request's content
    fingerprint, asks the routing policy for a target — each candidate's
    :class:`~repro.fleet.routing.ServerLoad` carries its utilisation and
    the requesting user's RTT from *latency* — and admits on that
    server, hitting its plan cache when a structurally identical app was
    seen there before.  ``max_users_per_server`` bounds admission; when
    every alive server is full (or the whole fleet is down), users are
    admitted *degraded*: they run fully locally, which is always
    feasible and keeps fleet totals finite.  Degraded users are retained
    and re-admitted by :meth:`retry_degraded` once capacity frees.

    *migration* prices every user move (rebalance, failover and
    handover replays) as re-transmission of the offloaded input data
    plus a handoff latency; the charges accumulate per user and surface
    in :meth:`total_consumption`.  Pass ``MigrationCostModel.free()``
    to restore the legacy moves-are-free accounting.

    Users move, too: with a time-varying *latency* map (a
    :class:`~repro.mobility.latency.MobileLatencyMap`) and a *handover*
    policy (:mod:`repro.mobility.handover`), :meth:`tick` advances
    simulated time — positions drift, every link's RTT is re-measured
    into the telemetry series, and the policy decides per user whether
    the worsening link is worth a priced handover.
    """

    def __init__(
        self,
        n_servers: int = 4,
        capacity_per_server: float = 500.0,
        *,
        capacities: Sequence[float] | None = None,
        servers: Mapping[str, EdgeServer] | None = None,
        strategy: str = "spectral",
        config: "PlannerConfig | None" = None,
        allocation: AllocationPolicy | None = None,
        routing: RoutingPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        cache_capacity: int = 256,
        max_users_per_server: int | None = None,
        backend: "PlanningBackend | None" = None,
        latency: LatencyMap | None = None,
        migration: MigrationCostModel | None = None,
        forecaster: str | None = "ewma",
        handover: "HandoverPolicy | None" = None,
        channel: SharedChannel | None = None,
    ) -> None:
        from repro.core.baselines import make_planner

        if servers is None:
            if capacities is not None:
                per_server = list(capacities)
                if not per_server:
                    raise ValueError("capacities must name at least one server")
            else:
                if n_servers < 1:
                    raise ValueError(f"n_servers must be >= 1, got {n_servers}")
                per_server = [capacity_per_server] * n_servers
            servers = {
                f"edge-{index:02d}": EdgeServer(capacity)
                for index, capacity in enumerate(per_server)
            }
        elif capacities is not None:
            raise ValueError("pass either servers= or capacities=, not both")
        if not servers:
            raise ValueError("a fleet needs at least one server")
        if max_users_per_server is not None and max_users_per_server < 1:
            raise ValueError(
                f"max_users_per_server must be >= 1, got {max_users_per_server}"
            )

        template = make_planner(strategy, config)
        self._template = template
        self.strategy_name = template.strategy_name
        self.config = template.config
        self.backend = backend
        self.routing = routing or RoundRobinRouting()
        self.metrics = metrics or MetricsRegistry()
        self.max_users_per_server = max_users_per_server
        self.latency = latency or ZeroLatency()
        self.migration = migration or MigrationCostModel()
        self.handover = handover
        self._ticks = 0
        self.telemetry: FleetTelemetry | None = (
            FleetTelemetry(self.metrics, forecaster) if forecaster is not None else None
        )
        self.channel = channel
        """Optional shared-channel spec applied per server: each cell has
        its own spectrum, so every :class:`FleetServer` prices uploads at
        ``b_i(n)`` over *its* co-offloading population."""
        self.servers: dict[str, FleetServer] = {
            server_id: FleetServer(
                server_id,
                server,
                template.cut_strategy,
                config=template.config,
                allocation=allocation,
                cache_capacity=cache_capacity,
                channel=channel,
            )
            for server_id, server in servers.items()
        }
        self._dead: dict[str, FleetServer] = {}
        self._owner: dict[str, str] = {}
        self._degraded: dict[str, _DegradedUser] = {}
        self._migration_debt: dict[str, ConsumptionBreakdown] = {}
        self._slas: dict[str, UserSLA] = {}
        self._sla_rejections = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def request_key(self, graph: FunctionCallGraph) -> str:
        """The content fingerprint used for routing and plan caching."""
        return request_fingerprint(graph, self.config, self.strategy_name)

    def _eligible(self) -> list[FleetServer]:
        cap = self.max_users_per_server
        return [
            server
            for server in self.servers.values()
            if cap is None or server.users < cap
        ]

    def admit(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        sla: UserSLA | None = None,
    ) -> FleetAdmission:
        """Route and admit one user; never fails for lack of capacity.

        With *sla*, routing becomes *constrained* placement: candidate
        servers whose modelled cost for this user — hypothetical
        ``E + T`` on that server's deployment plus the link RTT,
        evaluated through :func:`repro.fleet.modelled.modelled_user_cost`
        — would breach the deadline are filtered out before the routing
        policy chooses.  When no server is feasible the user degrades to
        all-local execution (still queued for :meth:`retry_degraded`) or
        is rejected outright, per :attr:`~repro.forecast.sla.UserSLA.
        on_infeasible`.
        """
        return self._admit_one(device, graph, fallback_plan=None, sla=sla)

    def _lookup_plan(self, key: str) -> "UserPlan | None":
        """Any server's cached plan for *key*, without statistics churn.

        Plans are server-independent (content-addressed), so a
        speculative SLA evaluation may borrow the plan from whichever
        cache holds it; :meth:`~repro.service.plan_cache.PlanCache.peek`
        leaves LRU order and hit-rate accounting untouched — probes are
        not requests.
        """
        for server in self.servers.values():
            plan = server.cache.peek(key)
            if plan is not None:
                return plan
        return None

    def _sla_feasible(
        self,
        eligible: list[FleetServer],
        device: MobileDevice,
        graph: FunctionCallGraph,
        plan: "UserPlan",
        sla: UserSLA,
    ) -> list[FleetServer]:
        """The subset of *eligible* whose modelled cost meets the deadline."""
        weights = self.config.objective
        return [
            server
            for server in eligible
            if sla.satisfied_by(
                modelled_user_cost(
                    server,
                    device,
                    graph,
                    plan,
                    weights,
                    rtt=self.latency.rtt(device.device_id, server.server_id),
                )
            )
        ]

    def _admit_infeasible(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        sla: UserSLA | None,
    ) -> FleetAdmission:
        """No server can take the user: degrade to all-local, or reject."""
        user_id = device.device_id
        if sla is not None and sla.on_infeasible == "reject":
            self._sla_rejections += 1
            self.metrics.counter("fleet_sla_rejections").inc()
            self._record_tick()
            return FleetAdmission(user_id, None, None, rejected=True)
        self._degraded[user_id] = _DegradedUser(
            device, graph, all_local_breakdown(device, graph), sla=sla
        )
        if sla is not None:
            self._slas[user_id] = sla
            self.metrics.counter("fleet_sla_infeasible").inc()
        self.metrics.counter("fleet_degraded").inc()
        self._record_tick()
        return FleetAdmission(user_id, None, None, degraded=True)

    def _admit_one(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        fallback_plan: "UserPlan | None",
        sla: UserSLA | None = None,
    ) -> FleetAdmission:
        user_id = device.device_id
        if user_id in self._owner or user_id in self._degraded:
            raise ValueError(f"user {user_id!r} already admitted to the fleet")
        started = time.perf_counter()
        eligible = self._eligible()
        if not eligible:
            return self._admit_infeasible(device, graph, sla)

        key = self.request_key(graph)
        if sla is not None:
            # Feasibility needs the newcomer's plan before any server is
            # chosen; borrow a cached one when possible, else plan once
            # and hand the result down as the admission's fallback plan
            # (used only on a cache miss, so hit-rate stats are honest).
            if fallback_plan is None:
                fallback_plan = self._lookup_plan(key)
            if fallback_plan is None:
                fallback_plan = self._template.plan_user(graph)
            eligible = self._sla_feasible(eligible, device, graph, fallback_plan, sla)
            if not eligible:
                return self._admit_infeasible(device, graph, sla)
        target = self.routing.route(
            key,
            [
                server.load(
                    rtt=self.latency.rtt(user_id, server.server_id),
                    predicted_utilisation=(
                        self.telemetry.predict_utilisation(server.server_id)
                        if self.telemetry is not None
                        else None
                    ),
                )
                for server in eligible
            ],
        )
        server = self.servers[target]
        record, cache_hit = server.admit(device, graph, key, fallback_plan=fallback_plan)
        self._owner[user_id] = target
        if sla is not None:
            self._slas[user_id] = sla
        self.metrics.counter("fleet_admitted").inc()
        self.metrics.counter("fleet_cache_hits" if cache_hit else "fleet_cache_misses").inc()
        self.metrics.gauge(f"fleet_users_{target}").set(server.users)
        self.metrics.histogram("fleet_admit_seconds").observe(time.perf_counter() - started)
        self._record_tick()
        return FleetAdmission(user_id, target, record, cache_hit=cache_hit)

    def admit_many(
        self,
        arrivals: "Sequence[tuple[MobileDevice, FunctionCallGraph]]",
        backend: "PlanningBackend | None" = None,
        slas: Mapping[str, UserSLA] | None = None,
    ) -> list[FleetAdmission]:
        """Admit a batch of users; identical outcome to sequential admits.

        Plans are server-independent and planning is deterministic, so a
        batch can pre-plan its distinct fingerprints up front — fanning
        across *backend*'s process pool when one is attached (falling
        back to ``self.backend``, then to inline planning) — while the
        admissions themselves stay sequential.  Routing decisions,
        cache-hit accounting, capacity caps and planner state therefore
        match a plain ``admit`` loop exactly; only the planning work is
        hoisted out and parallelised.  *slas* attaches per-user
        :class:`~repro.forecast.sla.UserSLA` deadlines by device id.
        """
        backend = backend if backend is not None else self.backend
        precomputed: dict[str, "UserPlan"] = {}
        if backend is not None and len(arrivals) > 1:
            pending: dict[str, FunctionCallGraph] = {}
            for _, graph in arrivals:
                key = self.request_key(graph)
                if key in pending or any(
                    key in server.cache for server in self.servers.values()
                ):
                    continue
                pending[key] = graph
            if pending:
                keys = list(pending)
                try:
                    plans = backend.plan_many(
                        self._template, [pending[key] for key in keys]
                    )
                except Exception:  # noqa: BLE001 - pre-planning is best-effort
                    # Fall back to inline planning so batch admission
                    # raises exactly where a sequential loop would.
                    self.metrics.counter("fleet_preplan_failures").inc()
                else:
                    precomputed = dict(zip(keys, plans, strict=True))
        return [
            self._admit_one(
                device,
                graph,
                fallback_plan=precomputed.get(self.request_key(graph)),
                sla=(slas or {}).get(device.device_id),
            )
            for device, graph in arrivals
        ]

    def retry_degraded(self) -> list[FleetAdmission]:
        """Re-admit degraded users through normal routing; return successes.

        Degraded (all-local) users are queued, not abandoned: whenever
        capacity frees — a rebalance opens a slot under the user cap, a
        dead server is revived — this walks them in degradation order
        and routes each through the standard admission path (policy,
        caps and caches all apply).  Users the fleet still cannot take
        stay degraded; nothing is ever lost either way.
        """
        if not self._degraded:
            return []
        readmitted: list[FleetAdmission] = []
        for user_id in list(self._degraded):
            if not self._eligible():
                break
            entry = self._degraded.pop(user_id)
            admission = self._admit_one(
                entry.device, entry.graph, fallback_plan=None, sla=entry.sla
            )
            if admission.degraded:
                # Capacity exists but the user's SLA still finds no
                # feasible server; _admit_one re-queued them degraded.
                continue
            readmitted.append(admission)
            self.metrics.counter("fleet_degraded_recovered").inc()
        return readmitted

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def total_consumption(self) -> SystemConsumption:
        """Fleet-wide ``E`` and ``T``: the union of per-server totals.

        User ids are fleet-unique, so merging per-user breakdowns is
        exact; degraded users contribute their all-local consumption.
        Two fleet-layer charges fold into the same ledger: offloading
        users carry the RTT of the link to their server (added to the
        waiting term and, per the formula-(2) invariant, to the
        waiting-inclusive remote time), and migrated users carry their
        accumulated migration debt in transmission/waiting terms.
        """
        combined = SystemConsumption()
        for server_id, server in self.servers.items():
            for user_id, breakdown in server.current_consumption().per_user.items():
                rtt = self.latency.rtt(user_id, server_id)
                if rtt > 0 and (
                    breakdown.remote_time > 0 or breakdown.transmission_time > 0
                ):
                    breakdown = replace(
                        breakdown,
                        remote_time=breakdown.remote_time + rtt,
                        waiting_time=breakdown.waiting_time + rtt,
                    )
                combined.per_user[user_id] = breakdown
        for user_id, degraded in self._degraded.items():
            combined.per_user[user_id] = degraded.breakdown
        for user_id, debt in self._migration_debt.items():
            if user_id in combined.per_user:
                combined.per_user[user_id] = combined.per_user[user_id] + debt
        return combined

    def sla_report(self) -> SLAReport:
        """Point-in-time SLA scorecard against the *current* ledger.

        Each SLA-carrying user's cost is recomputed from
        :meth:`total_consumption` — link RTT and accumulated migration
        debt included — and compared against their deadline in the
        objective's scalarised currency.  The report is a snapshot, not
        a running counter: a rebalance pass (proactive or reactive) can
        genuinely lower, or raise, the violation rate, which is exactly
        what the SLA benchmark measures.
        """
        weights = self.config.objective
        consumption = self.total_consumption()
        violations = 0
        degraded = 0
        worst = 0.0
        for user_id, sla in self._slas.items():
            breakdown = consumption.per_user.get(user_id)
            if breakdown is None:
                # A drained user between kill_server and failover
                # re-admission has no ledger entry this instant.
                continue
            cost = weights.combine(breakdown.energy, breakdown.time)
            if sla.violated_by(cost):
                violations += 1
                worst = max(worst, cost - sla.deadline)
            if user_id in self._degraded:
                degraded += 1
        self.metrics.gauge("fleet_sla_violations").set(violations)
        return SLAReport(
            users=len(self._slas),
            violations=violations,
            rejections=self._sla_rejections,
            degraded=degraded,
            worst_excess=worst,
        )

    def load_stats(self) -> list[ServerLoad]:
        """Per-server load snapshots, sorted by server id."""
        return [
            self.servers[server_id].load() for server_id in sorted(self.servers)
        ]

    def stats(self) -> FleetStats:
        hits = self.metrics.counter("fleet_cache_hits").value
        misses = self.metrics.counter("fleet_cache_misses").value
        return FleetStats(
            servers=len(self.servers),
            users=len(self._owner),
            degraded_users=len(self._degraded),
            cache_hits=hits,
            cache_misses=misses,
            per_server_users={
                server_id: server.users for server_id, server in sorted(self.servers.items())
            },
            per_server_utilisation={
                server_id: server.utilisation
                for server_id, server in sorted(self.servers.items())
            },
        )

    @property
    def degraded_users(self) -> dict[str, ConsumptionBreakdown]:
        """Users running all-local because no server had capacity."""
        return {
            user_id: entry.breakdown for user_id, entry in self._degraded.items()
        }

    @property
    def migration_debt(self) -> dict[str, ConsumptionBreakdown]:
        """Accumulated per-user migration charges (moves are never free)."""
        return dict(self._migration_debt)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record_tick(self) -> None:
        """Sample every server's utilisation and every owned link's RTT.

        Called at the end of each admission and rebalance — the fleet's
        notion of a tick — so the telemetry's series advance with the
        workload and forecasts always extrapolate from the latest state.
        A fleet built with ``forecaster=None`` records nothing.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        for server_id, server in sorted(self.servers.items()):
            telemetry.record_server(server_id, server.utilisation)
            for user_id in server.admitted:
                telemetry.record_link(
                    user_id, server_id, self.latency.rtt(user_id, server_id)
                )

    # ------------------------------------------------------------------
    # Mobility: the simulated-time loop
    # ------------------------------------------------------------------
    def _run_handovers(self) -> "tuple[list[HandoverDecision], float]":
        """Offer every admitted user a handover; execute accepted ones.

        Users are visited in sorted-id order (determinism over dict
        history).  Users whose placement offloads nothing are skipped:
        they use no link (their RTT never enters the ledger — see
        :meth:`total_consumption`), so a handover could only cost and
        never help.  Each remaining user sees its current link plus
        every *eligible* alternative — ``max_users_per_server`` binds
        handover targets exactly as it binds admission and rebalance
        targets — and the fleet's :attr:`handover` policy picks a
        destination or declines.  Accepted moves replay the user's
        recorded plan on the new server and are charged through
        :meth:`charge_migration`, identically to rebalance moves:
        switching base stations re-transmits the offloaded state and
        pays the handoff latency.
        """
        from repro.mobility.handover import HandoverDecision

        policy = self.handover
        if policy is None:  # pragma: no cover - tick() guards
            return [], 0.0
        weights = self.config.objective
        cap = self.max_users_per_server
        decisions: list[HandoverDecision] = []
        charged = 0.0
        for user_id in sorted(self._owner):
            src_id = self._owner[user_id]
            src = self.servers[src_id]
            app, remote = src.placement_of(user_id)
            if app.remote_weight(remote) <= 0 and app.cut_weight(remote) <= 0:
                continue
            rtts = {src_id: self.latency.rtt(user_id, src_id)}
            for server in self.servers.values():
                if server is src or (cap is not None and server.users >= cap):
                    continue
                rtts[server.server_id] = self.latency.rtt(user_id, server.server_id)
            target = policy.target(user_id, src_id, rtts, self.telemetry)
            if target is None or target == src_id or target not in rtts:
                continue
            cost = self._move_user(src, self.servers[target], user_id)
            charged += cost.combined(weights)
            self.metrics.counter("fleet_handovers").inc()
            decisions.append(
                HandoverDecision(
                    user_id=user_id,
                    source=src_id,
                    target=target,
                    rtt_before=rtts[src_id],
                    rtt_after=rtts[target],
                    tick=self._ticks,
                )
            )
        return decisions, charged

    def tick(self, dt: float = 1.0) -> TickReport:
        """Advance simulated time by *dt*: move users, re-measure, hand over.

        One tick (i) advances the latency map when it is time-varying —
        a :class:`~repro.mobility.latency.MobileLatencyMap` exposes
        ``advance(dt)``; static maps have no such method and simply
        stand still — (ii) records the post-move RTT of every owned
        link into the existing ``fleet_rtt_*`` telemetry series (and
        every server's utilisation), so forecasters extrapolate from
        live positions, and (iii) runs the fleet's
        :class:`~repro.mobility.handover.HandoverPolicy`, if one is
        configured, over every admitted user.  Executed handovers are
        priced through the :class:`~repro.fleet.migration.
        MigrationCostModel` and charged into the user's migration debt,
        exactly like rebalance moves; the report totals the charge.

        The loop is deterministic: with seeded mobility models the same
        seed replays the same positions, the same RTTs, and therefore
        the same handover sequence, tick for tick.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        advance = getattr(self.latency, "advance", None)
        if advance is not None:
            advance(dt)
        self._ticks += 1
        self._record_tick()
        decisions: "list[HandoverDecision]" = []
        charged = 0.0
        if self.handover is not None:
            decisions, charged = self._run_handovers()
        self.metrics.counter("fleet_ticks").inc()
        return TickReport(
            tick=self._ticks, dt=dt, handovers=decisions, migration_cost=charged
        )

    # ------------------------------------------------------------------
    # Rebalancing and failover hooks
    # ------------------------------------------------------------------
    def charge_migration(self, user_id: str) -> MigrationCost:
        """Charge *user_id* for having been moved to its current server.

        Prices re-transmitting the offloaded input data of the user's
        current placement at their link rate, plus the model's handoff
        latency, and records the charge in the user's migration debt;
        :meth:`total_consumption` folds the debt into the fleet ledger.
        """
        server = self.servers[self._owner[user_id]]
        entry = server.admitted[user_id]
        cost = self.migration.cost(entry.device, server.offloaded_data(user_id))
        debt = self._migration_debt.get(user_id)
        breakdown = cost.as_breakdown()
        self._migration_debt[user_id] = (
            breakdown if debt is None else debt + breakdown
        )
        self.metrics.counter("fleet_migrations").inc()
        self.metrics.histogram("fleet_migration_cost").observe(
            cost.combined(self.config.objective)
        )
        return cost

    def _move_gain(self, src: FleetServer, dst: FleetServer, user_id: str) -> float:
        """Modelled ``E + T`` drop from moving *user_id* from src to dst.

        Evaluates both servers' deployments with the user's current
        placement lifted from *src* onto *dst* (no replanning, no
        mutation) and adds the RTT delta for offloading users — moving
        toward a nearer server is itself a gain under a geo latency map.
        """
        weights = self.config.objective
        entry = src.admitted[user_id]
        app, remote = src.placement_of(user_id)
        before = src.modelled_combined(weights) + dst.modelled_combined(weights)
        after = src.modelled_combined(weights, without=user_id) + dst.modelled_combined(
            weights, extra=(entry.device, entry.graph, app, remote)
        )
        gain = before - after
        if app.remote_weight(remote) > 0 or app.cut_weight(remote) > 0:
            rtt_delta = self.latency.rtt(user_id, src.server_id) - self.latency.rtt(
                user_id, dst.server_id
            )
            gain += weights.combine(0.0, rtt_delta)
        return gain

    def _next_rebalance_move(
        self, tolerance: int, cost_aware: bool
    ) -> tuple[FleetServer, FleetServer, str] | None:
        """Pick the next (src, dst, user) move, or ``None`` to stop.

        The destination is the idlest *capped-eligible* server — a
        rebalance must respect ``max_users_per_server`` exactly as
        admission does, never overfilling a target past the cap.  A
        move is only proposed while it strictly reduces the user-count
        spread (a spread of 1 cannot improve; moving would just swap
        which server is busiest, looping forever at ``tolerance=0``).
        Cost-aware mode additionally requires the best candidate's
        modelled gain to exceed its migration cost.
        """
        ranked = sorted(self.servers.values(), key=lambda s: (s.users, s.server_id))
        busiest = ranked[-1]
        targets = [server for server in self._eligible() if server is not busiest]
        if not targets:
            return None
        idlest = min(targets, key=lambda s: (s.users, s.server_id))
        spread = busiest.users - idlest.users
        if spread <= tolerance or spread <= 1:
            return None
        if not cost_aware:
            return busiest, idlest, next(reversed(busiest.admitted))

        weights = self.config.objective
        best_user: str | None = None
        best_net = 0.0
        for user_id in reversed(list(busiest.admitted)):
            entry = busiest.admitted[user_id]
            cost = self.migration.cost(
                entry.device, busiest.offloaded_data(user_id)
            ).combined(weights)
            net = self._move_gain(busiest, idlest, user_id) - cost
            if best_user is None or net > best_net:
                best_user, best_net = user_id, net
        if best_user is None or best_net <= 0.0:
            return None
        return busiest, idlest, best_user

    def _move_user(self, src: FleetServer, dst: FleetServer, user_id: str) -> MigrationCost:
        """Replay *user_id* from *src* onto *dst*; charge and return the cost."""
        entry = src.evict(user_id)
        dst.admit(entry.device, entry.graph, entry.key, plan=entry.plan)
        self._owner[user_id] = dst.server_id
        cost = self.charge_migration(user_id)
        self.metrics.gauge(f"fleet_users_{src.server_id}").set(src.users)
        self.metrics.gauge(f"fleet_users_{dst.server_id}").set(dst.users)
        self.metrics.counter("fleet_rebalanced").inc()
        return cost

    def _best_proactive_move(
        self, src: FleetServer, predicted: dict[str, float], threshold: float
    ) -> tuple[FleetServer, str, float] | None:
        """Pick (destination, user, shifted weight) to relieve *src*.

        The candidate user is the one offloading the most computation to
        *src* (all-local users free no server capacity); the destination
        is the capped-eligible server whose *predicted* utilisation
        stays under the threshold after absorbing that weight, lowest
        predicted-after first.  Users carrying an SLA are only moved to
        servers where their deadline stays feasible — evaluated through
        the same shared helper as admission.
        """
        candidates = [s for s in self._eligible() if s is not src]
        if not candidates:
            return None
        best: tuple[float, str] | None = None
        for user_id in src.admitted:
            app, remote = src.placement_of(user_id)
            weight = app.remote_weight(remote)
            if weight <= 0:
                continue
            if best is None or (weight, user_id) > best:
                best = (weight, user_id)
        if best is None:
            return None
        weight, user_id = best
        entry = src.admitted[user_id]
        sla = self._slas.get(user_id)
        feasible: list[tuple[float, str, FleetServer]] = []
        for dst in candidates:
            after = predicted[dst.server_id] + weight / dst.server.total_capacity
            if after > threshold:
                continue
            if sla is not None and not self._sla_feasible(
                [dst], entry.device, entry.graph, entry.plan, sla
            ):
                continue
            feasible.append((after, dst.server_id, dst))
        if not feasible:
            return None
        _, _, dst = min(feasible, key=lambda item: (item[0], item[1]))
        return dst, user_id, weight

    def _rebalance_proactive(
        self, max_moves: int | None, horizon: int, threshold: float
    ) -> int:
        """Drain servers whose *forecasted* utilisation breaches threshold.

        Seeds a per-server predicted-utilisation map from the telemetry
        (falling back to current utilisation on cold series), then
        repeatedly relieves the hottest predicted-breaching server,
        updating the map incrementally as each move shifts offloaded
        weight — the forecast is not re-queried mid-pass, so one pass
        acts on one consistent view of the future.
        """
        telemetry = self.telemetry
        if telemetry is None:  # pragma: no cover - rebalance() validates
            raise ValueError("proactive rebalancing needs telemetry")
        predicted: dict[str, float] = {}
        for server_id, server in sorted(self.servers.items()):
            outlook = telemetry.predict_utilisation(server_id, horizon)
            if outlook is None:
                outlook = server.utilisation
            predicted[server_id] = max(outlook, 0.0)
        moves = 0
        while max_moves is None or moves < max_moves:
            breaching = sorted(
                (sid for sid, value in predicted.items() if value > threshold),
                key=lambda sid: (-predicted[sid], sid),
            )
            chosen: tuple[FleetServer, FleetServer, str, float] | None = None
            for src_id in breaching:
                src = self.servers[src_id]
                move = self._best_proactive_move(src, predicted, threshold)
                if move is not None:
                    dst, user_id, weight = move
                    chosen = (src, dst, user_id, weight)
                    break
            if chosen is None:
                break
            src, dst, user_id, weight = chosen
            self._move_user(src, dst, user_id)
            predicted[src.server_id] -= weight / src.server.total_capacity
            predicted[dst.server_id] += weight / dst.server.total_capacity
            self.metrics.counter("fleet_proactive_moves").inc()
            moves += 1
        return moves

    def rebalance(
        self,
        max_moves: int | None = None,
        tolerance: int = 1,
        *,
        cost_aware: bool = True,
        proactive: bool = False,
        horizon: int = 1,
        utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
    ) -> int:
        """Move users between servers to restore balance; return moves.

        Reactive (default): each move evicts one of the busiest server's
        users and replays it (with its recorded plan — no replanning) on
        the idlest *eligible* server (``max_users_per_server`` is
        enforced on move targets exactly as on admission), until the
        user-count spread is within *tolerance*, no move can improve it,
        or *max_moves* is reached.  This is the hook a supervisor calls
        after failover or a burst of affinity-skewed arrivals.

        Proactive (``proactive=True``): instead of reacting to the
        spread the fleet *observes*, moves drain servers whose
        utilisation the telemetry *forecasts* above
        *utilisation_threshold* at *horizon* ticks out — the hotspot is
        relieved before it materialises.  Requires the fleet to have
        been built with a forecaster (the default); *tolerance* and
        *cost_aware* do not apply.

        Moves are not free in either mode: each one is charged through
        the fleet's :class:`~repro.fleet.migration.MigrationCostModel`
        (re-transmit the offloaded input data, pay the handoff latency)
        and the charge lands in the moved user's ledger.  With
        *cost_aware* (the reactive default) a move only happens when its
        modelled imbalance gain exceeds that cost — the candidate moved
        is the busiest server's best net-gain user, not blindly its most
        recent admission; pass ``cost_aware=False`` for the
        unconditional spread-flattening rebalancer (still charged, never
        gated).  Afterwards, any freed capacity is offered to degraded
        users via :meth:`retry_degraded`.
        """
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if proactive:
            if self.telemetry is None:
                raise ValueError(
                    "proactive rebalancing needs telemetry; "
                    "build the fleet with a forecaster"
                )
            if horizon < 1:
                raise ValueError(f"horizon must be >= 1, got {horizon}")
            moves = self._rebalance_proactive(
                max_moves, horizon, utilisation_threshold
            )
        else:
            moves = 0
            while max_moves is None or moves < max_moves:
                move = self._next_rebalance_move(tolerance, cost_aware)
                if move is None:
                    break
                busiest, idlest, user_id = move
                self._move_user(busiest, idlest, user_id)
                moves += 1
        if self._degraded:
            self.retry_degraded()
        self._record_tick()
        return moves

    def kill_server(self, server_id: str) -> list[tuple[MobileDevice, FunctionCallGraph]]:
        """Take *server_id* out of the pool; return its drained users.

        The server's planner state and cache are discarded (the machine
        is gone); callers — normally
        :func:`repro.fleet.failover.handle_outage` — re-admit the
        returned users on the survivors.
        """
        server = self.servers.pop(server_id, None)
        if server is None:
            raise KeyError(f"unknown or already-dead server {server_id!r}")
        self._dead[server_id] = server
        self.routing.forget(server_id)
        drained = server.drain()
        for entry in drained:
            self._owner.pop(entry.device.device_id, None)
        self.metrics.counter("fleet_server_outages").inc()
        self.metrics.gauge(f"fleet_users_{server_id}").set(0)
        return [(entry.device, entry.graph) for entry in drained]

    def revive_server(self, server_id: str) -> list[FleetAdmission]:
        """Return a previously-killed server to the pool (recovery hook).

        The server rejoins empty (its users were drained at the outage)
        but keeps its plan cache — the recovered machine's content-
        addressed plans are still valid, planning being deterministic.
        Freed capacity is immediately offered to degraded users through
        :meth:`retry_degraded`; the re-admissions are returned.
        """
        server = self._dead.pop(server_id, None)
        if server is None:
            raise KeyError(f"server {server_id!r} is not dead")
        self.servers[server_id] = server
        self.metrics.counter("fleet_server_revivals").inc()
        self.metrics.gauge(f"fleet_users_{server_id}").set(server.users)
        return self.retry_degraded()
