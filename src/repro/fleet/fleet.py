"""The edge fleet: a pool of servers, each with its own planner and cache.

The paper (and every module below this one) models a *single* edge
server ``S``.  :class:`EdgeFleet` scales that model horizontally: each
:class:`FleetServer` is one paper-faithful deployment — an
:class:`~repro.mec.devices.EdgeServer` with its own
:class:`~repro.mec.online.OnlinePlanner` state and
:class:`~repro.service.plan_cache.PlanCache` — and a pluggable
:class:`~repro.fleet.routing.RoutingPolicy` decides which server admits
each arriving user.  Per-server results therefore remain exactly the
paper's COPMECS model; the fleet layer adds what the model cannot say:
load balance across servers, cache locality under content-affine
routing, rebalancing, and failover (see :mod:`repro.fleet.failover`).

Consumption aggregates across the fleet by merging per-user breakdowns:
user ids are fleet-unique, so the union of every server's
:class:`~repro.mec.system.SystemConsumption` *is* the fleet total, plus
the all-local consumption of users admitted in degraded mode (no server
had capacity for them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.fleet.routing import RoutingPolicy, RoundRobinRouting, ServerLoad
from repro.mec.admission import AllocationPolicy
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.energy import ConsumptionBreakdown, local_compute_time, local_energy
from repro.mec.online import AdmissionRecord, OnlinePlanner
from repro.mec.system import SystemConsumption
from repro.service.fingerprint import request_fingerprint
from repro.service.metrics import MetricsRegistry
from repro.service.plan_cache import PlanCache

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import PlannerConfig
    from repro.core.results import CutStrategy, UserPlan
    from repro.service.executor import PlanningBackend


def all_local_breakdown(device: MobileDevice, graph: FunctionCallGraph) -> ConsumptionBreakdown:
    """Degraded-mode consumption: the whole application runs on-device.

    This is the paper's no-offloading baseline — formulas (1) and (3)
    with every function local — and the fleet's fallback when no server
    has capacity left.  Always finite: no transmission, no waiting.
    """
    t_c = local_compute_time(graph.total_computation(), device.compute_capacity)
    return ConsumptionBreakdown(
        local_energy=local_energy(t_c, device.power_compute),
        transmission_energy=0.0,
        local_time=t_c,
        remote_time=0.0,
        transmission_time=0.0,
        waiting_time=0.0,
    )


@dataclass
class _AdmittedUser:
    """Everything a server must remember to re-admit a user elsewhere."""

    device: MobileDevice
    graph: FunctionCallGraph
    key: str
    plan: "UserPlan"


@dataclass
class FleetAdmission:
    """Outcome of one fleet admission."""

    user_id: str
    server_id: str | None
    """The admitting server; ``None`` when the user fell back to local."""

    record: AdmissionRecord | None
    cache_hit: bool = False
    degraded: bool = False


class FleetServer:
    """One edge server plus its planner state and content-addressed cache."""

    def __init__(
        self,
        server_id: str,
        server: EdgeServer,
        cut_strategy: "CutStrategy",
        config: "PlannerConfig | None" = None,
        allocation: AllocationPolicy | None = None,
        cache_capacity: int = 256,
    ) -> None:
        self.server_id = server_id
        self.server = server
        self._cut_strategy = cut_strategy
        self._config = config
        self._allocation = allocation
        self.planner = OnlinePlanner(server, cut_strategy, config=config, allocation=allocation)
        self.cache = PlanCache(capacity=cache_capacity)
        self.admitted: dict[str, _AdmittedUser] = {}

    @property
    def users(self) -> int:
        return len(self.admitted)

    @property
    def remote_load(self) -> float:
        """Total computation weight currently offloaded to this server."""
        state = self.planner.state
        return sum(
            state.apps[user_id].remote_weight(state.remote_parts.get(user_id, set()))
            for user_id in state.apps
        )

    def load(self) -> ServerLoad:
        return ServerLoad(
            server_id=self.server_id,
            users=self.users,
            remote_load=self.remote_load,
            capacity=self.server.total_capacity,
        )

    def admit(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        key: str,
        plan: "UserPlan | None" = None,
        fallback_plan: "UserPlan | None" = None,
    ) -> tuple[AdmissionRecord, bool]:
        """Admit one user, serving the plan from this server's cache.

        Returns ``(record, cache_hit)``.  A *plan* passed explicitly
        (rebalance/failover replay) bypasses the cache lookup — the move
        is not a request, so it must not distort hit-rate statistics —
        but still populates the cache for future arrivals.  A
        *fallback_plan* (batch pre-planning) is only used after a cache
        miss, so hit-rate statistics stay identical to planning inline;
        planning is deterministic, so the result is identical too.
        """
        cache_hit = False
        if plan is None:
            plan = self.cache.get(key)
            cache_hit = plan is not None
            if plan is None:
                plan = fallback_plan
        record = self.planner.admit(device, graph, plan=plan)
        self.cache.put(key, record.plan)
        self.admitted[device.device_id] = _AdmittedUser(device, graph, key, record.plan)
        return record, cache_hit

    def evict(self, user_id: str) -> _AdmittedUser:
        """Remove one user, rebuilding the planner state from the rest.

        :class:`OnlinePlanner` freezes placements and cannot un-admit,
        so eviction replays the surviving users (in admission order,
        with their recorded plans — no compress/cut work) into a fresh
        planner.  Greedy placement re-runs, which is the point: the
        survivors reclaim the evicted user's share of the server.
        """
        entry = self.admitted.pop(user_id, None)
        if entry is None:
            raise KeyError(f"user {user_id!r} not admitted on {self.server_id!r}")
        survivors = list(self.admitted.values())
        self.planner = OnlinePlanner(
            self.server, self._cut_strategy, config=self._config, allocation=self._allocation
        )
        for survivor in survivors:
            self.planner.admit(survivor.device, survivor.graph, plan=survivor.plan)
        return entry

    def drain(self) -> list[_AdmittedUser]:
        """Remove and return every admitted user (outage path)."""
        drained = list(self.admitted.values())
        self.admitted.clear()
        self.planner = OnlinePlanner(
            self.server, self._cut_strategy, config=self._config, allocation=self._allocation
        )
        return drained

    def current_consumption(self) -> SystemConsumption:
        if not self.admitted:
            return SystemConsumption()
        return self.planner.current_consumption()


@dataclass
class FleetStats:
    """Point-in-time fleet counters (see :meth:`EdgeFleet.stats`)."""

    servers: int
    users: int
    degraded_users: int
    cache_hits: int
    cache_misses: int
    per_server_users: dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def imbalance(self) -> float:
        """max/mean admitted users across alive servers (1.0 = perfect)."""
        counts = list(self.per_server_users.values())
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean


class EdgeFleet:
    """A pool of edge servers behind one admission front-end.

    Servers are homogeneous by default (``n_servers`` servers of
    ``capacity_per_server`` each); pass *servers* for a heterogeneous
    pool.  Every admission computes the request's content fingerprint,
    asks the routing policy for a target, and admits on that server —
    hitting its plan cache when a structurally identical app was seen
    there before.  ``max_users_per_server`` bounds admission; when every
    alive server is full (or the whole fleet is down), users are
    admitted *degraded*: they run fully locally, which is always
    feasible and keeps fleet totals finite.
    """

    def __init__(
        self,
        n_servers: int = 4,
        capacity_per_server: float = 500.0,
        *,
        servers: Mapping[str, EdgeServer] | None = None,
        strategy: str = "spectral",
        config: "PlannerConfig | None" = None,
        allocation: AllocationPolicy | None = None,
        routing: RoutingPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        cache_capacity: int = 256,
        max_users_per_server: int | None = None,
        backend: "PlanningBackend | None" = None,
    ) -> None:
        from repro.core.baselines import make_planner

        if servers is None:
            if n_servers < 1:
                raise ValueError(f"n_servers must be >= 1, got {n_servers}")
            servers = {
                f"edge-{index:02d}": EdgeServer(capacity_per_server)
                for index in range(n_servers)
            }
        if not servers:
            raise ValueError("a fleet needs at least one server")
        if max_users_per_server is not None and max_users_per_server < 1:
            raise ValueError(
                f"max_users_per_server must be >= 1, got {max_users_per_server}"
            )

        template = make_planner(strategy, config)
        self._template = template
        self.strategy_name = template.strategy_name
        self.config = template.config
        self.backend = backend
        self.routing = routing or RoundRobinRouting()
        self.metrics = metrics or MetricsRegistry()
        self.max_users_per_server = max_users_per_server
        self.servers: dict[str, FleetServer] = {
            server_id: FleetServer(
                server_id,
                server,
                template.cut_strategy,
                config=template.config,
                allocation=allocation,
                cache_capacity=cache_capacity,
            )
            for server_id, server in servers.items()
        }
        self._dead: dict[str, FleetServer] = {}
        self._owner: dict[str, str] = {}
        self._degraded: dict[str, ConsumptionBreakdown] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def request_key(self, graph: FunctionCallGraph) -> str:
        """The content fingerprint used for routing and plan caching."""
        return request_fingerprint(graph, self.config, self.strategy_name)

    def _eligible(self) -> list[FleetServer]:
        cap = self.max_users_per_server
        return [
            server
            for server in self.servers.values()
            if cap is None or server.users < cap
        ]

    def admit(self, device: MobileDevice, graph: FunctionCallGraph) -> FleetAdmission:
        """Route and admit one user; never fails for lack of capacity."""
        return self._admit_one(device, graph, fallback_plan=None)

    def _admit_one(
        self,
        device: MobileDevice,
        graph: FunctionCallGraph,
        fallback_plan: "UserPlan | None",
    ) -> FleetAdmission:
        user_id = device.device_id
        if user_id in self._owner or user_id in self._degraded:
            raise ValueError(f"user {user_id!r} already admitted to the fleet")
        started = time.perf_counter()
        eligible = self._eligible()
        if not eligible:
            self._degraded[user_id] = all_local_breakdown(device, graph)
            self.metrics.counter("fleet_degraded").inc()
            return FleetAdmission(user_id, None, None, degraded=True)

        key = self.request_key(graph)
        target = self.routing.route(key, [server.load() for server in eligible])
        server = self.servers[target]
        record, cache_hit = server.admit(device, graph, key, fallback_plan=fallback_plan)
        self._owner[user_id] = target
        self.metrics.counter("fleet_admitted").inc()
        self.metrics.counter("fleet_cache_hits" if cache_hit else "fleet_cache_misses").inc()
        self.metrics.gauge(f"fleet_users_{target}").set(server.users)
        self.metrics.histogram("fleet_admit_seconds").observe(time.perf_counter() - started)
        return FleetAdmission(user_id, target, record, cache_hit=cache_hit)

    def admit_many(
        self,
        arrivals: "Sequence[tuple[MobileDevice, FunctionCallGraph]]",
        backend: "PlanningBackend | None" = None,
    ) -> list[FleetAdmission]:
        """Admit a batch of users; identical outcome to sequential admits.

        Plans are server-independent and planning is deterministic, so a
        batch can pre-plan its distinct fingerprints up front — fanning
        across *backend*'s process pool when one is attached (falling
        back to ``self.backend``, then to inline planning) — while the
        admissions themselves stay sequential.  Routing decisions,
        cache-hit accounting, capacity caps and planner state therefore
        match a plain ``admit`` loop exactly; only the planning work is
        hoisted out and parallelised.
        """
        backend = backend if backend is not None else self.backend
        precomputed: dict[str, "UserPlan"] = {}
        if backend is not None and len(arrivals) > 1:
            pending: dict[str, FunctionCallGraph] = {}
            for _, graph in arrivals:
                key = self.request_key(graph)
                if key in pending or any(
                    key in server.cache for server in self.servers.values()
                ):
                    continue
                pending[key] = graph
            if pending:
                keys = list(pending)
                try:
                    plans = backend.plan_many(
                        self._template, [pending[key] for key in keys]
                    )
                except Exception:  # noqa: BLE001 - pre-planning is best-effort
                    # Fall back to inline planning so batch admission
                    # raises exactly where a sequential loop would.
                    self.metrics.counter("fleet_preplan_failures").inc()
                else:
                    precomputed = dict(zip(keys, plans, strict=True))
        return [
            self._admit_one(
                device, graph, fallback_plan=precomputed.get(self.request_key(graph))
            )
            for device, graph in arrivals
        ]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def total_consumption(self) -> SystemConsumption:
        """Fleet-wide ``E`` and ``T``: the union of per-server totals.

        User ids are fleet-unique, so merging per-user breakdowns is
        exact; degraded users contribute their all-local consumption.
        """
        combined = SystemConsumption()
        for server in self.servers.values():
            combined.per_user.update(server.current_consumption().per_user)
        combined.per_user.update(self._degraded)
        return combined

    def load_stats(self) -> list[ServerLoad]:
        """Per-server load snapshots, sorted by server id."""
        return [
            self.servers[server_id].load() for server_id in sorted(self.servers)
        ]

    def stats(self) -> FleetStats:
        hits = self.metrics.counter("fleet_cache_hits").value
        misses = self.metrics.counter("fleet_cache_misses").value
        return FleetStats(
            servers=len(self.servers),
            users=len(self._owner),
            degraded_users=len(self._degraded),
            cache_hits=hits,
            cache_misses=misses,
            per_server_users={
                server_id: server.users for server_id, server in sorted(self.servers.items())
            },
        )

    @property
    def degraded_users(self) -> dict[str, ConsumptionBreakdown]:
        """Users running all-local because no server had capacity."""
        return dict(self._degraded)

    # ------------------------------------------------------------------
    # Rebalancing and failover hooks
    # ------------------------------------------------------------------
    def rebalance(self, max_moves: int | None = None, tolerance: int = 1) -> int:
        """Move users from the busiest to the idlest server; return moves.

        Each move evicts the busiest server's most recent admission and
        replays it (with its recorded plan — no replanning) on the
        idlest server, until the user-count spread is within *tolerance*
        or *max_moves* is reached.  This is the hook a supervisor calls
        after failover or a burst of affinity-skewed arrivals.
        """
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        moves = 0
        while max_moves is None or moves < max_moves:
            ranked = sorted(self.servers.values(), key=lambda s: (s.users, s.server_id))
            idlest, busiest = ranked[0], ranked[-1]
            if busiest.users - idlest.users <= tolerance:
                break
            user_id = next(reversed(busiest.admitted))
            entry = busiest.evict(user_id)
            idlest.admit(entry.device, entry.graph, entry.key, plan=entry.plan)
            self._owner[user_id] = idlest.server_id
            self.metrics.counter("fleet_rebalanced").inc()
            moves += 1
        return moves

    def kill_server(self, server_id: str) -> list[tuple[MobileDevice, FunctionCallGraph]]:
        """Take *server_id* out of the pool; return its drained users.

        The server's planner state and cache are discarded (the machine
        is gone); callers — normally
        :func:`repro.fleet.failover.handle_outage` — re-admit the
        returned users on the survivors.
        """
        server = self.servers.pop(server_id, None)
        if server is None:
            raise KeyError(f"unknown or already-dead server {server_id!r}")
        self._dead[server_id] = server
        self.routing.forget(server_id)
        drained = server.drain()
        for entry in drained:
            self._owner.pop(entry.device.device_id, None)
        self.metrics.counter("fleet_server_outages").inc()
        self.metrics.gauge(f"fleet_users_{server_id}").set(0)
        return [(entry.device, entry.graph) for entry in drained]
