"""Multi-server edge fleet: routing, sharded admission, and failover.

The paper's COPMECS model assumes one edge server ``S``; this package
scales it horizontally while keeping every per-server result exactly
the paper's model.  Six pieces:

* :mod:`repro.fleet.routing` — pluggable user→server policies:
  round-robin, least-loaded, power-of-two-choices, and
  fingerprint-affinity consistent hashing (structurally identical apps
  land on the same server and hit its plan cache); the load-aware
  policies balance on user counts or on utilisation (for heterogeneous
  capacities) and can weigh per-user RTT into the choice;
* :mod:`repro.fleet.latency` — per-(user, server) RTT maps (zero,
  static, geo-positional) threaded through routing snapshots and into
  waiting-time accounting;
* :mod:`repro.fleet.migration` — pricing of user moves between servers
  (re-transmit offloaded input data at the link rate plus a handoff
  latency); rebalancing is cost-aware and every move is charged;
* :mod:`repro.fleet.modelled` — the shared hypothetical-deployment
  evaluator behind both cost-aware rebalancing gains and SLA admission
  feasibility (one modelled-latency path, no drift);
* :mod:`repro.fleet.fleet` — :class:`EdgeFleet`, holding one
  :class:`~repro.mec.online.OnlinePlanner` and
  :class:`~repro.service.plan_cache.PlanCache` per server, fleet-wide
  :class:`~repro.mec.system.SystemConsumption` aggregation,
  rebalancing, and degraded-user retry;
* :mod:`repro.fleet.failover` — server-outage handling
  (:class:`~repro.simulation.faults.ServerOutage`): drain, re-admit on
  survivors (charged as migrations), degraded all-local fallback when
  no capacity remains, revival via :meth:`EdgeFleet.revive_server`.

The fleet also builds on :mod:`repro.forecast` (a leaf package) for the
temporal dimension: per-user :class:`~repro.forecast.sla.UserSLA`
deadlines accepted at :meth:`EdgeFleet.admit` (routing as constrained
placement), per-server/per-link telemetry recorded on every tick, and
``EdgeFleet.rebalance(proactive=True, horizon=h)`` moving users off
servers whose *forecasted* utilisation breaches threshold.

``python -m repro fleet-bench`` replays an arrival trace over the fleet
and compares routing policies on load balance, cache hit rate and
``E + T`` against a single server of equal total capacity.
"""

from repro.fleet.failover import FailoverReport, apply_outages, handle_outage
from repro.fleet.fleet import (
    EdgeFleet,
    FleetAdmission,
    FleetServer,
    FleetStats,
    TickReport,
    all_local_breakdown,
)
from repro.fleet.latency import (
    LATENCY_MODELS,
    GeoLatencyMap,
    LatencyMap,
    StaticLatencyMap,
    ZeroLatency,
    make_latency_map,
)
from repro.fleet.migration import MigrationCost, MigrationCostModel
from repro.fleet.modelled import (
    hypothetical_consumption,
    hypothetical_remote_parts,
    modelled_user_cost,
)
from repro.fleet.routing import (
    BALANCE_METRICS,
    ROUTING_POLICIES,
    FingerprintAffinityRouting,
    ForecastRouting,
    LeastLoadedRouting,
    PowerOfTwoRouting,
    RoundRobinRouting,
    RoutingPolicy,
    ServerLoad,
    make_routing_policy,
)

__all__ = [
    "RoutingPolicy",
    "RoundRobinRouting",
    "LeastLoadedRouting",
    "PowerOfTwoRouting",
    "FingerprintAffinityRouting",
    "ForecastRouting",
    "ServerLoad",
    "ROUTING_POLICIES",
    "BALANCE_METRICS",
    "make_routing_policy",
    "LatencyMap",
    "ZeroLatency",
    "StaticLatencyMap",
    "GeoLatencyMap",
    "LATENCY_MODELS",
    "make_latency_map",
    "MigrationCost",
    "MigrationCostModel",
    "EdgeFleet",
    "FleetServer",
    "FleetAdmission",
    "FleetStats",
    "TickReport",
    "all_local_breakdown",
    "hypothetical_consumption",
    "hypothetical_remote_parts",
    "modelled_user_cost",
    "FailoverReport",
    "handle_outage",
    "apply_outages",
]
