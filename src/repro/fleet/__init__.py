"""Multi-server edge fleet: routing, sharded admission, and failover.

The paper's COPMECS model assumes one edge server ``S``; this package
scales it horizontally while keeping every per-server result exactly
the paper's model.  Three pieces:

* :mod:`repro.fleet.routing` — pluggable user→server policies:
  round-robin, least-loaded, power-of-two-choices, and
  fingerprint-affinity consistent hashing (structurally identical apps
  land on the same server and hit its plan cache);
* :mod:`repro.fleet.fleet` — :class:`EdgeFleet`, holding one
  :class:`~repro.mec.online.OnlinePlanner` and
  :class:`~repro.service.plan_cache.PlanCache` per server, fleet-wide
  :class:`~repro.mec.system.SystemConsumption` aggregation, and
  rebalancing hooks;
* :mod:`repro.fleet.failover` — server-outage handling
  (:class:`~repro.simulation.faults.ServerOutage`): drain, re-admit on
  survivors, degraded all-local fallback when no capacity remains.

``python -m repro fleet-bench`` replays an arrival trace over the fleet
and compares routing policies on load balance, cache hit rate and
``E + T`` against a single server of equal total capacity.
"""

from repro.fleet.failover import FailoverReport, apply_outages, handle_outage
from repro.fleet.fleet import (
    EdgeFleet,
    FleetAdmission,
    FleetServer,
    FleetStats,
    all_local_breakdown,
)
from repro.fleet.routing import (
    ROUTING_POLICIES,
    FingerprintAffinityRouting,
    LeastLoadedRouting,
    PowerOfTwoRouting,
    RoundRobinRouting,
    RoutingPolicy,
    ServerLoad,
    make_routing_policy,
)

__all__ = [
    "RoutingPolicy",
    "RoundRobinRouting",
    "LeastLoadedRouting",
    "PowerOfTwoRouting",
    "FingerprintAffinityRouting",
    "ServerLoad",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "EdgeFleet",
    "FleetServer",
    "FleetAdmission",
    "FleetStats",
    "all_local_breakdown",
    "FailoverReport",
    "handle_outage",
    "apply_outages",
]
