"""Server-outage failover: drain the dead server, re-admit on survivors.

Integrates the fleet with :mod:`repro.simulation.faults`: a
:class:`~repro.simulation.faults.ServerOutage` names a fleet server and
a time, and :func:`handle_outage` plays the recovery out — the dead
server's users are drained and re-routed through the fleet's normal
admission path (so the routing policy, per-server caches and any
``max_users_per_server`` cap all apply), and whoever no surviving server
can take falls back to degraded all-local execution.  No user is ever
lost: every drained user ends up either re-admitted or degraded, and
both states have finite ``E + T`` by construction.

Re-admission is not free: each reassigned user re-transmits their
offloaded input data to the new server and pays the handoff latency, so
every reassignment is charged through the fleet's
:class:`~repro.fleet.migration.MigrationCostModel` and the charge lands
in the fleet's ``SystemConsumption`` waiting/transmission terms.  After
the drained users are placed, any capacity still free is offered to
previously-degraded users via :meth:`~repro.fleet.fleet.EdgeFleet.retry_degraded`
(and :func:`revive_server` does the same when a machine returns), so
degraded users are a queue, not a terminal state.

:func:`apply_outages` replays a time-ordered schedule of outages (the
fault-schedule idiom of :func:`repro.simulation.engine.simulate_scheme`)
and returns one report per outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.fleet import EdgeFleet
from repro.mec.system import SystemConsumption
from repro.simulation.faults import ServerOutage


@dataclass
class FailoverReport:
    """What one outage did to the fleet."""

    server_id: str
    drained_users: int
    reassigned: dict[str, str] = field(default_factory=dict)
    """user id -> surviving server that re-admitted them."""

    degraded: list[str] = field(default_factory=list)
    """Users no survivor could take; now running all-local."""

    recovered: dict[str, str] = field(default_factory=dict)
    """Previously-degraded users re-admitted after the reshuffle."""

    migration_cost: float = 0.0
    """Total ``E + T`` charged for re-transmitting reassigned users' state."""

    consumption_after: SystemConsumption = field(default_factory=SystemConsumption)

    @property
    def lost_users(self) -> int:
        """Always 0 by construction; kept explicit for assertions."""
        return self.drained_users - len(self.reassigned) - len(self.degraded)


def handle_outage(fleet: EdgeFleet, outage: ServerOutage) -> FailoverReport:
    """Kill ``outage.server_id`` and re-admit its users on the survivors.

    Users are re-admitted in their original admission order through
    :meth:`EdgeFleet.admit_many`, so re-routing respects the fleet's
    policy and capacity caps — and when the fleet has a planning backend
    attached, plans the survivors' caches no longer hold are recomputed
    in parallel across its process pool.  Each reassigned user is
    charged the migration cost of the move (their offloaded input data
    did not teleport to the survivor); with zero surviving capacity
    every drained user degrades to all-local execution instead of being
    dropped.  Degraded users — from this outage or earlier — are then
    offered whatever capacity remains via
    :meth:`EdgeFleet.retry_degraded`.
    """
    drained = fleet.kill_server(outage.server_id)
    report = FailoverReport(server_id=outage.server_id, drained_users=len(drained))
    weights = fleet.config.objective
    for admission in fleet.admit_many(drained):
        if admission.degraded:
            report.degraded.append(admission.user_id)
        else:
            assert admission.server_id is not None
            report.reassigned[admission.user_id] = admission.server_id
            cost = fleet.charge_migration(admission.user_id)
            report.migration_cost += cost.combined(weights)
    for admission in fleet.retry_degraded():
        assert admission.server_id is not None
        report.recovered[admission.user_id] = admission.server_id
    report.consumption_after = fleet.total_consumption()
    fleet.metrics.counter("fleet_failover_reassigned").inc(len(report.reassigned))
    fleet.metrics.counter("fleet_failover_degraded").inc(len(report.degraded))
    return report


def apply_outages(fleet: EdgeFleet, outages: list[ServerOutage]) -> list[FailoverReport]:
    """Replay *outages* in time order; returns one report per outage."""
    return [
        handle_outage(fleet, outage)
        for outage in sorted(outages, key=lambda fault: fault.time)
    ]
