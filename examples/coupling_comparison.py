#!/usr/bin/env python
"""Loosely vs highly coupled applications (the abstract's claim).

"Experiments show that the algorithm is effective in handling programs
with loosely coupled as well as highly coupled functions."  This example
builds both kinds of application and shows how the pipeline adapts: on a
tightly coupled program, compression fuses far more aggressively (heavy
data flows must never be cut), so less ends up offloadable — but what is
offloaded still pays.

Run:  python examples/coupling_comparison.py
"""

from __future__ import annotations

from repro import make_planner, synthesize_application
from repro.experiments.reporting import render_table
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.mec.devices import DeviceProfile
from repro.mec.scheme import PartitionedApplication

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def plan_app(coupling: str):
    app = synthesize_application(
        f"{coupling}-app", n_functions=80, seed=11, n_components=4, coupling=coupling
    )
    device = MobileDevice("u1", profile=PROFILE)
    system = MECSystem(EdgeServer(total_capacity=300.0), [UserContext(device, app)])
    planner = make_planner("spectral")
    result = planner.plan_system(system, {"u1": app})
    plan = result.user_plans["u1"]

    # Compare against running everything on the device.
    papp = PartitionedApplication("u1", app, plan.parts)
    all_local = system.evaluate_placement({"u1": papp}, {"u1": set()})
    return app, plan, result, all_local


def main() -> None:
    rows = []
    for coupling in ("loose", "tight"):
        app, plan, result, all_local = plan_app(coupling)
        c = result.consumption
        rows.append(
            [
                coupling,
                f"{app.total_communication():.0f}",
                f"{plan.compression_ratio:.1f}x",
                result.scheme.offload_count("u1"),
                f"{c.energy:.2f}",
                f"{all_local.energy:.2f}",
                f"{c.combined():.2f}",
                f"{all_local.combined():.2f}",
            ]
        )
    print("=== Loose vs tight coupling, spectral pipeline ===")
    print(
        render_table(
            [
                "coupling",
                "total comm",
                "compression",
                "offloaded fns",
                "E (scheme)",
                "E (all local)",
                "E+T (scheme)",
                "E+T (all local)",
            ],
            rows,
        )
    )
    print(
        "\nTight coupling multiplies inter-function traffic; compression"
        "\nabsorbs it by fusing chatty neighbourhoods, and the scheme still"
        "\nimproves on running everything locally."
    )


if __name__ == "__main__":
    main()
