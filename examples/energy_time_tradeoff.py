#!/usr/bin/env python
"""Exploring the energy/time Pareto frontier of formula (6).

The paper's objective is a genuine double objective — ``min(E), min(T)``
— scalarised by Algorithm 2 into ``E + T``.  But a battery-constrained
deployment prices energy differently from a latency-constrained one.
This example sweeps the scalarisation weight, plans once per point, and
prints the non-dominated frontier an operator would choose from.

Run:  python examples/energy_time_tradeoff.py
"""

from __future__ import annotations

from repro.core.baselines import spectral_cut_strategy
from repro.experiments.reporting import render_table
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.mec.devices import DeviceProfile
from repro.mec.pareto import explore_tradeoff, pareto_front
from repro.workloads.applications import synthesize_application


def main() -> None:
    apps = {
        uid: synthesize_application(f"app-{uid}", n_functions=70, seed=seed)
        for uid, seed in (("u1", 21), ("u2", 22), ("u3", 23))
    }
    profile = DeviceProfile(
        compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
    )
    users = [UserContext(MobileDevice(uid, profile=profile), app) for uid, app in apps.items()]
    # A deliberately tight server: offloading saves energy but queues up,
    # so the two objectives genuinely pull in different directions.
    system = MECSystem(EdgeServer(total_capacity=60.0), users)

    points = explore_tradeoff(system, apps, spectral_cut_strategy())
    frontier = pareto_front(points)

    def describe(weight_e: float, weight_t: float) -> str:
        if weight_t == 0:
            return "energy-only"
        if weight_e == 0:
            return "time-only"
        ratio = weight_e / weight_t
        return "Algorithm 2 (E+T)" if ratio == 1.0 else f"E:T = {ratio:g}:1"

    print("=== All sampled operating points ===")
    print(
        render_table(
            ["weighting", "energy E", "time T", "offloaded"],
            [
                [describe(p.energy_weight, p.time_weight), p.energy, p.time, p.offloaded_functions]
                for p in points
            ],
        )
    )
    print("\n=== Pareto frontier (non-dominated) ===")
    print(
        render_table(
            ["weighting", "energy E", "time T"],
            [[describe(p.energy_weight, p.time_weight), p.energy, p.time] for p in frontier],
        )
    )
    print(
        "\nReading the frontier: moving down the time column costs joules,"
        "\nmoving down the energy column costs seconds — the offloading"
        "\nscheme is re-planned at each weighting, not merely re-priced."
    )


if __name__ == "__main__":
    main()
