#!/usr/bin/env python
"""Online admission: planning users as they arrive, without migration.

The paper plans all users at once; a live edge server admits them one at
a time, and moving an already-running placement is disruptive.  This
example admits six users sequentially with the incremental planner
(existing placements frozen) and compares each prefix against a full
offline replan — the measured price of never migrating.

Run:  python examples/online_admission.py
"""

from __future__ import annotations

from repro.core.baselines import spectral_cut_strategy
from repro.experiments.reporting import render_table
from repro.mec import EdgeServer, MobileDevice
from repro.mec.devices import DeviceProfile
from repro.mec.online import regret_vs_offline
from repro.workloads.applications import synthesize_application

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def main() -> None:
    arrivals = [
        (
            MobileDevice(f"user{k+1:02d}", profile=PROFILE),
            synthesize_application(f"app-{k}", n_functions=60, seed=71 + k),
        )
        for k in range(6)
    ]
    # A deliberately tight server: early arrivals grab capacity that the
    # offline replanner would later redistribute — that's where regret
    # comes from.
    server = EdgeServer(total_capacity=60.0)

    rows = regret_vs_offline(server, spectral_cut_strategy(), arrivals)
    table = [
        [
            user_id,
            online_cost,
            offline_cost,
            online_cost / offline_cost if offline_cost else 1.0,
        ]
        for user_id, online_cost, offline_cost in rows
    ]
    print("=== Online (frozen placements) vs offline (full replan), E+T ===")
    print(
        render_table(
            ["after arrival of", "online E+T", "offline E+T", "regret ratio"], table
        )
    )
    worst = max(r[3] for r in table)
    print(
        f"\nworst regret: {worst:.3f}x — the most the deployment ever pays"
        "\nfor admitting users incrementally instead of re-migrating"
        "\neverything on each arrival."
    )


if __name__ == "__main__":
    main()
