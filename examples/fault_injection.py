#!/usr/bin/env python
"""Executing a planned scheme on the event simulator, with faults.

The closed-form model (formulas (1)-(6)) prices a scheme under ideal
conditions.  This example plans a scheme with the paper's pipeline, then
*executes* it on the discrete-event simulator three times: healthy, with
the edge server degrading mid-run, and with one user's uplink dropping —
showing what each fault does to completion times and energy.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

from repro.core import make_planner
from repro.experiments.reporting import render_table
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.mec.devices import DeviceProfile
from repro.mec.scheme import PartitionedApplication
from repro.simulation import BandwidthChange, ServerDegradation, simulate_scheme
from repro.workloads.applications import synthesize_application

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def main() -> None:
    # Two users sharing one server.
    apps = {
        uid: synthesize_application(f"app-{uid}", n_functions=60, seed=seed)
        for uid, seed in (("alice", 3), ("bob", 4))
    }
    users = [UserContext(MobileDevice(uid, profile=PROFILE), app) for uid, app in apps.items()]
    system = MECSystem(EdgeServer(total_capacity=400.0), users)

    planner = make_planner("spectral")
    result = planner.plan_system(system, apps)
    print(result.summary())

    partitioned = {
        uid: PartitionedApplication(uid, app, result.user_plans[uid].parts)
        for uid, app in apps.items()
    }
    placement = result.greedy.remote_parts

    scenarios = {
        "healthy": [],
        "server loses half capacity at t=1s": [ServerDegradation(time=1.0, factor=0.5)],
        "alice's uplink drops 4x at t=0.2s": [
            BandwidthChange(time=0.2, user_id="alice", factor=0.25)
        ],
    }

    rows = []
    for label, faults in scenarios.items():
        report = simulate_scheme(system, partitioned, placement, faults=faults)
        alice = report.timeline("alice")
        bob = report.timeline("bob")
        rows.append(
            [
                label,
                alice.upload_finish,
                alice.service_finish,
                bob.service_finish,
                report.total_energy,
                f"{100 * report.server_utilization:.0f}%",
            ]
        )
    print("\n=== Fault scenarios (same scheme, different conditions) ===")
    print(
        render_table(
            [
                "scenario",
                "alice upload (s)",
                "alice remote done (s)",
                "bob remote done (s)",
                "energy",
                "server util",
            ],
            rows,
        )
    )
    print(
        "\nThe scheme itself never changes — only the conditions do.  Server"
        "\ndegradation stretches whoever is queued; a bandwidth drop both"
        "\ndelays that user's remote start and raises their radio energy"
        "\n(power x longer transmission)."
    )


if __name__ == "__main__":
    main()
