#!/usr/bin/env python
"""One scheme, five worlds: scenario comparison on the event simulator.

Plans a three-user system once, then replays the identical placement
under five conditions — healthy baseline, degraded server, one user's
radio failing, Poisson arrivals, and a shared (contended) wireless
channel — and prints the aligned makespan/energy inflation table.

Run:  python examples/scenario_comparison.py
"""

from __future__ import annotations

from repro.core import make_planner
from repro.experiments.reporting import render_table
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.mec.devices import DeviceProfile
from repro.mec.scheme import PartitionedApplication
from repro.simulation import (
    BandwidthChange,
    Scenario,
    ServerDegradation,
    compare_scenarios,
)
from repro.workloads.applications import synthesize_application
from repro.workloads.multiuser import poisson_arrivals

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def main() -> None:
    apps = {
        uid: synthesize_application(f"app-{uid}", n_functions=60, seed=seed)
        for uid, seed in (("ana", 51), ("ben", 52), ("cho", 53))
    }
    users = [UserContext(MobileDevice(uid, profile=PROFILE), app) for uid, app in apps.items()]
    system = MECSystem(EdgeServer(total_capacity=120.0), users)

    result = make_planner("spectral").plan_system(system, apps)
    print(result.summary())

    partitioned = {
        uid: PartitionedApplication(uid, app, result.user_plans[uid].parts)
        for uid, app in apps.items()
    }

    scenarios = [
        Scenario("healthy"),
        Scenario("server at 25%", faults=(ServerDegradation(time=0.5, factor=0.25),)),
        Scenario("ana's radio at 10%", faults=(BandwidthChange(time=0.2, user_id="ana", factor=0.1),)),
        Scenario("poisson arrivals", arrivals=poisson_arrivals(sorted(apps), rate=0.5, seed=7)),
        Scenario("shared 50-unit channel", shared_uplink_capacity=50.0),
    ]
    comparison = compare_scenarios(
        system, partitioned, result.greedy.remote_parts, scenarios
    )

    print("\n=== Same scheme under five conditions ===")
    print(
        render_table(
            ["scenario", "makespan (s)", "x baseline", "energy (J)", "x baseline"],
            comparison.rows(),
        )
    )
    print(
        "\nMakespan moves with the conditions; energy only moves when the"
        "\nradio itself is slower (airtime x power) — exactly the split the"
        "\nclosed-form model cannot show."
    )


if __name__ == "__main__":
    main()
