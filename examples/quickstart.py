#!/usr/bin/env python
"""Quickstart: plan the offloading of one synthetic mobile application.

Builds a 60-function application (through the bytecode IR and the static
extractor), puts it on a mid-range handset sharing an edge server, runs
the paper's full pipeline (compression -> spectral cut -> greedy), and
prints what got offloaded and what it costs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import make_planner, synthesize_application
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.mec.devices import DeviceProfile


def main() -> None:
    # 1. An application: 60 functions in 3 components, some reading
    #    sensors (those can never leave the device).
    app = synthesize_application(
        "photo-assistant", n_functions=60, seed=7, n_components=3, sensor_fraction=0.1
    )
    print(f"application: {app}")
    print(f"  pinned to device: {sorted(app.unoffloadable_functions())[:5]} ...")

    # 2. A device and the shared edge server.
    handset = MobileDevice(
        "alice-phone",
        profile=DeviceProfile(
            compute_capacity=20.0,  # I_c : slow mobile CPU
            power_compute=1.0,      # p_c : joules per second of local compute
            power_transmit=6.0,     # p_t : joules per data unit sent (>> p_c)
            bandwidth=70.0,         # b   : uplink data units per second
        ),
    )
    system = MECSystem(
        EdgeServer(total_capacity=300.0),
        [UserContext(handset, app)],
    )

    # 3. Plan with the paper's algorithm.
    planner = make_planner("spectral")
    result = planner.plan_system(system, {"alice-phone": app})

    # 4. Inspect the outcome.
    print(f"\n{result.summary()}")
    plan = result.user_plans["alice-phone"]
    print(
        f"compression: {plan.original_nodes} -> {plan.compressed_nodes} nodes "
        f"({plan.compression_ratio:.1f}x), {plan.propagation_rounds} propagation rounds"
    )
    remote = sorted(result.scheme.remote_for("alice-phone"))
    print(f"offloaded {len(remote)} functions: {remote[:8]}{' ...' if len(remote) > 8 else ''}")

    breakdown = result.consumption.per_user["alice-phone"]
    print(
        f"energy: local {breakdown.local_energy:.2f} J + "
        f"transmission {breakdown.transmission_energy:.2f} J = {breakdown.energy:.2f} J"
    )
    print(
        f"time:   local {breakdown.local_time:.2f} s, remote {breakdown.remote_time:.2f} s, "
        f"transmission {breakdown.transmission_time:.2f} s"
    )


if __name__ == "__main__":
    main()
