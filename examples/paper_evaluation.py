#!/usr/bin/env python
"""Regenerate the paper's entire evaluation into one markdown report.

Runs Table I, the single-user and multi-user energy sweeps and the
running-time comparison at laptop scale, and writes ``REPORT.md`` next to
this script — the one-command version of the benchmark suite's output.

Run:  python examples/paper_evaluation.py [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.report import generate_markdown_report
from repro.workloads.profiles import quick_profile


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "REPORT.md"
    print("running the full quick-profile evaluation (a few minutes)...")
    document = generate_markdown_report(quick_profile())
    out.write_text(document)
    print(f"wrote {out} ({len(document.splitlines())} lines)")
    # Show the headline section inline.
    lines = document.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("## Figures 3-5"):
            print("\n".join(lines[i : i + 18]))
            break


if __name__ == "__main__":
    main()
