#!/usr/bin/env python
"""The mini-Spark substrate: RDDs, block matrices, distributed Fiedler.

The paper accelerates its eigensolver with Spark (Fig. 9).  This example
tours the in-process equivalent: RDD-style map/reduce, block-partitioned
matrix products, and the distributed Fiedler solver — then times the
naive dense power-iteration solver against the cluster-backed one on the
same compressed workload, reproducing Fig. 9's gap in miniature.

Run:  python examples/spark_style_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import GraphCompressor
from repro.distributed import BlockMatrix, DistributedFiedlerSolver, LocalCluster
from repro.graphs.laplacian import laplacian_matrix
from repro.spectral.eigen import smallest_nontrivial_laplacian_eigenpair
from repro.utils.timer import Stopwatch
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph


def tour_rdd(cluster: LocalCluster) -> None:
    print("=== RDD tour ===")
    rdd = cluster.parallelize(range(1, 1001), partitions=8)
    total = rdd.map(lambda x: x * x).filter(lambda x: x % 2 == 0).sum()
    print(f"sum of even squares up to 1000^2: {total}")
    print(f"cluster ran {cluster.stats.stages} stages, {cluster.stats.tasks} tasks")


def tour_block_matrix(cluster: LocalCluster) -> None:
    print("\n=== Block matrix tour ===")
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((400, 400))
    vector = rng.standard_normal(400)
    blocks = BlockMatrix.from_dense(cluster, matrix)
    distributed = blocks.matvec(vector)
    print(f"block count: {blocks.block_count}; matvec error vs numpy: "
          f"{np.linalg.norm(distributed - matrix @ vector):.2e}")


def fiedler_race(cluster: LocalCluster) -> None:
    print("\n=== Fiedler race: naive power iteration vs distributed Lanczos ===")
    graph = netgen_graph(
        NetgenConfig(n_nodes=1000, n_edges=4912, seed=3, component_size_target=1000)
    )
    app = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.05, seed=3)
    compressed = GraphCompressor().compress(app.offloadable_subgraph())
    from repro.graphs.components import largest_component

    working = compressed.compressed.graph.subgraph(
        largest_component(compressed.compressed.graph)
    )
    print(f"compressed workload: {working.node_count} nodes, {working.edge_count} edges")

    laplacian = laplacian_matrix(working)

    naive = Stopwatch()
    with naive:
        value_naive, _ = smallest_nontrivial_laplacian_eigenpair(laplacian)

    solver = DistributedFiedlerSolver(cluster)
    spark = Stopwatch()
    with spark:
        result = solver.solve(working)

    print(f"naive power iteration: lambda2={value_naive:.6f} in {naive.elapsed:.3f}s")
    print(f"distributed Lanczos:   lambda2={result.value:.6f} in {spark.elapsed:.3f}s")
    print("(Fig. 9's point: the spectral pipeline's cost is matrix products,")
    print(" and distributing them closes the gap to the combinatorial baselines.)")


if __name__ == "__main__":
    with LocalCluster(workers=2) as cluster:
        tour_rdd(cluster)
        tour_block_matrix(cluster)
        fiedler_race(cluster)
