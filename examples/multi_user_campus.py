#!/usr/bin/env python
"""Multi-user scenario: a campus edge server under growing load.

The paper's multi-user point (Figs. 6-8): one edge server, many users,
and the offloading scheme must respect the server's finite capacity.
This example sweeps the user count, compares the three algorithms, and
shows how the server allocation policy changes the picture.

Run:  python examples/multi_user_campus.py
"""

from __future__ import annotations

from repro.core import make_planner
from repro.experiments.reporting import render_table
from repro.mec.admission import (
    EqualShareAllocation,
    FCFSQueueAllocation,
    ProportionalShareAllocation,
)
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile


def sweep_users() -> None:
    profile = quick_profile()
    print("=== Scaling the user population (FCFS server queue) ===")
    rows = []
    for n_users in (5, 15, 40):
        workload = build_mec_system(n_users, profile, graph_size=120)
        for algorithm in ("spectral", "maxflow", "kl"):
            result = make_planner(algorithm).plan_system(
                workload.system, workload.call_graphs
            )
            c = result.consumption
            rows.append(
                [n_users, algorithm, c.local_energy, c.transmission_energy, c.energy, c.time]
            )
    print(render_table(["users", "algorithm", "local E", "tx E", "total E", "T"], rows))


def compare_policies() -> None:
    import dataclasses

    base = quick_profile()
    print("\n=== Server allocation policies (20 users, spectral planner) ===")
    policies = {
        "fcfs-queue": FCFSQueueAllocation(),
        "equal-share": EqualShareAllocation(),
        "proportional": ProportionalShareAllocation(),
    }
    rows = []
    planner = make_planner("spectral")
    for capacity_per_user in (base.server_capacity_per_user, 25.0):
        profile = dataclasses.replace(base, server_capacity_per_user=capacity_per_user)
        for name, policy in policies.items():
            workload = build_mec_system(20, profile, graph_size=120, allocation=policy)
            result = planner.plan_system(workload.system, workload.call_graphs)
            c = result.consumption
            rows.append(
                [capacity_per_user, name, result.scheme.total_offloaded, c.energy, c.time]
            )
    print(
        render_table(
            ["capacity/user", "policy", "functions offloaded", "total E", "total T"],
            rows,
        )
    )
    print(
        "\nWith a well-provisioned server the policies agree.  Starve the"
        "\nserver and they split: the sharing policies shrink every user's"
        "\nslice, so the greedy pulls work back onto the devices, while the"
        "\nFCFS queue keeps serving at full speed and charges waiting time"
        "\ninstead (visible in the higher total T for its offloads)."
    )


if __name__ == "__main__":
    sweep_users()
    compare_policies()
