#!/usr/bin/env python
"""The paper's evaluation in miniature: three algorithms, one workload.

Generates a NETGEN-style network like the evaluation section does,
wraps it as an application, and pits the spectral pipeline against the
max-flow min-cut and Kernighan-Lin baselines — reporting the same
quantities as Figs. 3-5 (local, transmission and total energy).

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.core import make_planner
from repro.experiments.reporting import normalize_rows, render_table
from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import quick_profile


def main() -> None:
    profile = quick_profile()
    size = 500
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=2019)
    )
    app = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.05, seed=2019)
    device = MobileDevice("u1", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, app)]
    )

    results = []
    for algorithm in ("spectral", "maxflow", "kl"):
        planner = make_planner(algorithm)
        result = planner.plan_system(system, {"u1": app})
        results.append(result)
        print(result.summary())

    print(f"\n=== One {size}-function network, normalized like the paper ===")
    normalized_total = normalize_rows(results, lambda r: r.consumption.energy)
    rows = [
        [
            r.strategy_name,
            r.consumption.local_energy,
            r.consumption.transmission_energy,
            r.consumption.energy,
            normalized_total[i],
            r.scheme.total_offloaded,
        ]
        for i, r in enumerate(results)
    ]
    print(
        render_table(
            ["algorithm", "local E", "tx E", "total E", "normalized", "offloaded"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
