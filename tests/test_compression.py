"""Tests for Algorithm 1: label rules, propagation, merge, compressor."""

import pytest

from repro.compression.compressor import CompressionConfig, GraphCompressor
from repro.compression.labels import (
    AbsoluteThreshold,
    MeanScaledThreshold,
    QuantileThreshold,
)
from repro.compression.merge import merge_labeled_graph
from repro.compression.parallel import compress_components_parallel
from repro.compression.propagation import (
    LabelPropagation,
    TraversalPolicy,
    select_starter,
)
from repro.compression.termination import TerminationCriteria
from repro.graphs.generators import path_graph, two_cluster_graph
from repro.graphs.weighted_graph import WeightedGraph


class TestThresholdRules:
    def test_absolute(self, triangle):
        rule = AbsoluteThreshold(2.0)
        assert rule.threshold(triangle) == 2.0
        assert rule.is_strong(triangle, 2.5)
        assert not rule.is_strong(triangle, 2.0)  # strictly greater

    def test_absolute_negative_rejected(self):
        with pytest.raises(ValueError):
            AbsoluteThreshold(-1.0)

    def test_mean_scaled(self, triangle):
        # Edge weights 1, 2, 3 -> mean 2.
        assert MeanScaledThreshold(1.0).threshold(triangle) == pytest.approx(2.0)
        assert MeanScaledThreshold(0.5).threshold(triangle) == pytest.approx(1.0)

    def test_quantile(self, triangle):
        assert QuantileThreshold(0.0).threshold(triangle) == 1.0
        assert QuantileThreshold(1.0).threshold(triangle) == 3.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            QuantileThreshold(1.5)

    def test_edgeless_graph_threshold_zero(self):
        g = WeightedGraph()
        g.add_node("a")
        assert QuantileThreshold().threshold(g) == 0.0
        assert MeanScaledThreshold().threshold(g) == 0.0


class TestTermination:
    def test_alpha_threshold_stops(self):
        criteria = TerminationCriteria(alpha_threshold=0.1, max_rounds=100)
        assert criteria.should_stop(updates=1, total_nodes=20, rounds_done=1)
        assert not criteria.should_stop(updates=5, total_nodes=20, rounds_done=1)

    def test_max_rounds_stops(self):
        criteria = TerminationCriteria(alpha_threshold=0.0, max_rounds=3)
        assert criteria.should_stop(updates=10, total_nodes=20, rounds_done=3)

    def test_update_rate_formula7(self):
        criteria = TerminationCriteria()
        assert criteria.update_rate(5, 20) == 0.25
        assert criteria.update_rate(0, 0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TerminationCriteria(alpha_threshold=1.5)
        with pytest.raises(ValueError):
            TerminationCriteria(max_rounds=0)


class TestPropagation:
    def test_starter_is_max_degree(self, clusters):
        starter = select_starter(clusters)
        assert clusters.degree(starter) == max(
            clusters.degree(n) for n in clusters.nodes()
        )

    def test_starter_tiebreak_weighted_degree(self):
        g = WeightedGraph()
        for n in "abcd":
            g.add_node(n)
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("c", "d", weight=9.0)
        # All degrees equal 1; c and d have the higher weighted degree and
        # c comes first in insertion order.
        assert select_starter(g) == "c"

    def test_strong_edges_share_label(self, clusters):
        propagation = LabelPropagation(AbsoluteThreshold(5.0))
        report = propagation.run(clusters)
        labels = report.labels
        # Intra-cluster edges (10.0) are strong: each cluster one label.
        assert len({labels[n] for n in range(4)}) == 1
        assert len({labels[n] for n in range(4, 8)}) == 1
        # Bridge (1.0) is weak: clusters differ.
        assert labels[0] != labels[4]

    def test_weak_graph_all_distinct(self, chain):
        propagation = LabelPropagation(AbsoluteThreshold(10.0))
        report = propagation.run(chain)
        assert report.cluster_count == chain.node_count

    def test_zero_threshold_single_label_per_component(self, clusters):
        propagation = LabelPropagation(AbsoluteThreshold(0.0))
        report = propagation.run(clusters)
        assert report.cluster_count == 1

    def test_every_node_labeled(self, clusters):
        report = LabelPropagation(QuantileThreshold()).run(clusters)
        assert set(report.labels) == set(clusters.nodes())

    def test_disconnected_graph_handled(self):
        g = WeightedGraph()
        for n in range(4):
            g.add_node(n)
        g.add_edge(0, 1, weight=5.0)
        # Nodes 2, 3 isolated.
        report = LabelPropagation(AbsoluteThreshold(1.0)).run(g)
        assert set(report.labels) == {0, 1, 2, 3}
        assert report.labels[2] != report.labels[3]

    def test_dfs_policy_also_labels_everything(self, clusters):
        propagation = LabelPropagation(
            AbsoluteThreshold(5.0), policy=TraversalPolicy.DFS
        )
        report = propagation.run(clusters)
        assert set(report.labels) == set(clusters.nodes())
        assert report.labels[0] != report.labels[4]

    def test_empty_graph(self):
        report = LabelPropagation(QuantileThreshold()).run(WeightedGraph())
        assert report.labels == {}
        assert report.rounds == 0

    def test_beta_t_caps_rounds(self, clusters):
        criteria = TerminationCriteria(alpha_threshold=0.0, max_rounds=1)
        report = LabelPropagation(AbsoluteThreshold(5.0), criteria).run(clusters)
        assert report.rounds == 1

    def test_propagation_converges(self, clusters):
        report = LabelPropagation(AbsoluteThreshold(5.0)).run(clusters)
        # Last round must have performed no updates (fixed point).
        assert report.updates_per_round[-1] == 0


class TestMerge:
    def test_merge_fuses_same_label_neighbors(self, clusters):
        labels = {n: 0 if n < 4 else 1 for n in clusters.nodes()}
        compressed = merge_labeled_graph(clusters, labels)
        assert compressed.graph.node_count == 2
        assert compressed.graph.edge_count == 1
        # Bridge weight survives as the inter-super-node edge.
        assert compressed.graph.edge_weight(0, 1) == 1.0

    def test_merge_requires_connectivity(self, chain):
        # Same label but ends of the chain are not adjacent: only
        # connected runs merge.
        labels = {0: 0, 1: 1, 2: 0, 3: 0, 4: 1, 5: 0}
        compressed = merge_labeled_graph(chain, labels)
        # Runs: [0], [1], [2,3], [4], [5] -> 5 super-nodes.
        assert compressed.graph.node_count == 5

    def test_merged_weight_is_sum(self, clusters):
        labels = {n: 0 if n < 4 else 1 for n in clusters.nodes()}
        compressed = merge_labeled_graph(clusters, labels)
        total = clusters.total_node_weight()
        assert compressed.graph.total_node_weight() == pytest.approx(total)

    def test_expand_roundtrip(self, clusters):
        labels = {n: 0 if n < 4 else 1 for n in clusters.nodes()}
        compressed = merge_labeled_graph(clusters, labels)
        assert compressed.expand([0]) == {0, 1, 2, 3}
        assert compressed.expand([0, 1]) == set(range(8))
        assert compressed.super_node_of(5) == 1

    def test_unlabeled_node_rejected(self, chain):
        with pytest.raises(ValueError, match="no label"):
            merge_labeled_graph(chain, {0: 0})

    def test_reduction_metrics(self, clusters):
        labels = {n: 0 if n < 4 else 1 for n in clusters.nodes()}
        compressed = merge_labeled_graph(clusters, labels)
        assert compressed.node_reduction == pytest.approx(1 - 2 / 8)
        assert compressed.original_edge_count == 13


class TestCompressor:
    def test_two_cluster_compresses_to_two_nodes(self):
        graph = two_cluster_graph(5, intra_weight=10.0, bridge_weight=1.0)
        result = GraphCompressor(
            CompressionConfig(threshold_rule=AbsoluteThreshold(5.0))
        ).compress(graph)
        assert result.compressed.graph.node_count == 2

    def test_conserves_node_weight(self, clusters):
        result = GraphCompressor().compress(clusters)
        assert result.compressed.graph.total_node_weight() == pytest.approx(
            clusters.total_node_weight()
        )

    def test_never_merges_across_components(self):
        g = WeightedGraph()
        for n in range(4):
            g.add_node(n)
        g.add_edge(0, 1, weight=10.0)
        g.add_edge(2, 3, weight=10.0)
        result = GraphCompressor(
            CompressionConfig(threshold_rule=AbsoluteThreshold(1.0))
        ).compress(g)
        compressed = result.compressed
        assert compressed.graph.node_count == 2
        assert compressed.expand([compressed.super_node_of(0)]) == {0, 1}

    def test_parallel_matches_serial(self):
        g = WeightedGraph()
        offset = 0
        for _ in range(3):
            cluster = two_cluster_graph(4)
            for node in cluster.nodes():
                g.add_node(offset + node, weight=cluster.node_weight(node))
            for u, v, w in cluster.edges():
                g.add_edge(offset + u, offset + v, weight=w)
            offset += cluster.node_count

        config = CompressionConfig(threshold_rule=AbsoluteThreshold(5.0))
        serial = GraphCompressor(config).compress_serial(g)
        parallel = compress_components_parallel(g, config, max_workers=3)
        assert serial.compressed.clusters == parallel.compressed.clusters
        assert serial.compressed.graph.edge_list() == parallel.compressed.graph.edge_list()

    def test_parallel_flag_in_config(self, clusters):
        config = CompressionConfig(parallel=True, max_workers=2)
        result = GraphCompressor(config).compress(clusters)
        assert result.compressed.graph.node_count >= 1

    def test_compression_keeps_cut_reachable(self):
        """Compression must not change the weight of the cluster cut."""
        graph = two_cluster_graph(6, intra_weight=20.0, bridge_weight=2.0)
        result = GraphCompressor(
            CompressionConfig(threshold_rule=AbsoluteThreshold(10.0))
        ).compress(graph)
        compressed = result.compressed.graph
        # The only edge left is the bridge with its original weight.
        assert compressed.edge_count == 1
        _, _, weight = next(iter(compressed.edges()))
        assert weight == 2.0

    def test_rounds_reported(self, clusters):
        result = GraphCompressor().compress(clusters)
        assert result.rounds_total >= 1
        assert len(result.component_reports) == 1
