"""Tests for Laplacian builders and graph serialization."""

import numpy as np
import pytest

from repro.graphs.generators import path_graph, random_connected_graph
from repro.graphs.io import (
    graph_from_dict,
    graph_from_edge_list,
    graph_to_dict,
    load_graph_json,
    save_graph_json,
)
from repro.graphs.laplacian import (
    adjacency_matrix,
    degree_vector,
    laplacian_matrix,
    node_index,
    normalized_laplacian_matrix,
    sparse_laplacian,
)
from repro.graphs.validation import check_graph_invariants
from repro.graphs.weighted_graph import WeightedGraph


class TestLaplacian:
    def test_adjacency_symmetric(self, triangle):
        a = adjacency_matrix(triangle)
        assert np.allclose(a, a.T)
        assert a[0, 1] == 1.0  # a-b
        assert a[0, 2] == 3.0  # a-c

    def test_laplacian_rows_sum_to_zero(self, triangle):
        lap = laplacian_matrix(triangle)
        assert np.allclose(lap.sum(axis=1), 0.0)
        assert np.allclose(lap, lap.T)

    def test_laplacian_diagonal_is_weighted_degree(self, triangle):
        lap = laplacian_matrix(triangle)
        degrees = degree_vector(triangle)
        assert np.allclose(np.diag(lap), degrees)
        assert degrees.tolist() == [4.0, 3.0, 5.0]

    def test_laplacian_psd(self):
        g = random_connected_graph(12, 20, seed=3)
        lap = laplacian_matrix(g)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() > -1e-9

    def test_smallest_eigenvalue_zero_constant_vector(self, clusters):
        lap = laplacian_matrix(clusters)
        values, vectors = np.linalg.eigh(lap)
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        first = vectors[:, 0]
        assert np.allclose(first, first[0])

    def test_sparse_matches_dense(self):
        g = random_connected_graph(15, 30, seed=5)
        dense = laplacian_matrix(g)
        sparse = sparse_laplacian(g).toarray()
        assert np.allclose(dense, sparse)

    def test_custom_order_respected(self, triangle):
        order = ["c", "a", "b"]
        lap = laplacian_matrix(triangle, order)
        assert lap[0, 0] == 5.0  # c's weighted degree

    def test_node_index_rejects_incomplete_order(self, triangle):
        with pytest.raises(ValueError):
            node_index(triangle, ["a", "b"])
        with pytest.raises(ValueError):
            node_index(triangle, ["a", "a", "b"])

    def test_normalized_laplacian_spectrum_bounds(self):
        g = random_connected_graph(10, 20, seed=9)
        norm = normalized_laplacian_matrix(g)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.min() > -1e-9
        assert eigenvalues.max() < 2.0 + 1e-9

    def test_normalized_laplacian_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = random_connected_graph(8, 14, seed=11)
        nxg = networkx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        ours = normalized_laplacian_matrix(g, order=sorted(g.nodes()))
        theirs = networkx.normalized_laplacian_matrix(
            nxg, nodelist=sorted(g.nodes())
        ).toarray()
        assert np.allclose(ours, theirs)


class TestSerialization:
    def test_dict_roundtrip(self, triangle):
        rebuilt = graph_from_dict(graph_to_dict(triangle))
        assert rebuilt.node_count == 3
        assert rebuilt.edge_weight("a", "c") == 3.0
        assert rebuilt.node_weight("b") == 2.0
        check_graph_invariants(rebuilt)

    def test_json_roundtrip(self, tmp_path, clusters):
        path = tmp_path / "graph.json"
        save_graph_json(clusters, path)
        rebuilt = load_graph_json(path)
        assert rebuilt.node_count == clusters.node_count
        assert rebuilt.edge_count == clusters.edge_count
        assert rebuilt.total_edge_weight() == pytest.approx(
            clusters.total_edge_weight()
        )

    def test_edge_list_parser(self):
        lines = ["# comment", "", "a b 2.5", "b c", "c d 1"]
        g = graph_from_edge_list(lines)
        assert g.node_count == 4
        assert g.edge_weight("a", "b") == 2.5
        assert g.edge_weight("b", "c") == 1.0

    def test_edge_list_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            graph_from_edge_list(["a b c d"])

    def test_metadata_roundtrip(self):
        g = WeightedGraph()
        g.add_node("f1", weight=2.0, component="ui", offloadable=False)
        payload = graph_to_dict(g)
        rebuilt = graph_from_dict(payload)
        assert rebuilt.node_data("f1") == {"component": "ui", "offloadable": False}


class TestValidation:
    def test_valid_graph_passes(self, clusters):
        check_graph_invariants(clusters)

    def test_random_generator_output_valid(self):
        for seed in range(3):
            check_graph_invariants(random_connected_graph(20, 40, seed=seed))

    def test_generator_counts_exact(self):
        g = random_connected_graph(20, 40, seed=1)
        assert g.node_count == 20
        assert g.edge_count == 40

    def test_generator_dense_regime(self):
        g = random_connected_graph(8, 28, seed=1)  # complete graph
        assert g.edge_count == 28

    def test_generator_bad_edge_count(self):
        with pytest.raises(ValueError):
            random_connected_graph(10, 5, seed=0)  # below n-1
        with pytest.raises(ValueError):
            random_connected_graph(4, 10, seed=0)  # above n(n-1)/2

    def test_path_connectivity_from_generator(self):
        from repro.graphs.components import is_connected

        for seed in range(5):
            assert is_connected(random_connected_graph(30, 35, seed=seed))
