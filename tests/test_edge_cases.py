"""Edge cases and failure-mode tests across the pipeline.

Inputs the modules' happy paths never see: empty/degenerate applications,
extreme parameter regimes, pathological workloads — the places where
production libraries either behave sensibly or crash.
"""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.core import PlannerConfig, make_planner
from repro.core.baselines import spectral_cut_strategy
from repro.core.planner import OffloadingPlanner
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def system_for(app: FunctionCallGraph, server_capacity: float = 300.0):
    device = MobileDevice("u1", profile=PROFILE)
    return MECSystem(EdgeServer(server_capacity), [UserContext(device, app)])


class TestDegenerateApplications:
    def test_single_function_app(self):
        app = FunctionCallGraph("one")
        app.add_function("only", computation=10.0)
        result = make_planner("spectral").plan_system(system_for(app), {"u1": app})
        # One offloadable part; it either ships or stays — never crashes.
        assert result.consumption.energy >= 0.0

    def test_single_pinned_function_app(self):
        app = FunctionCallGraph("pinned")
        app.add_function("only", computation=10.0, offloadable=False)
        result = make_planner("spectral").plan_system(system_for(app), {"u1": app})
        assert result.scheme.remote_for("u1") == set()
        assert result.consumption.local_energy > 0.0

    def test_app_without_flows(self):
        app = FunctionCallGraph("isolated")
        for i in range(6):
            app.add_function(f"f{i}", computation=10.0 * (i + 1))
        result = make_planner("spectral").plan_system(system_for(app), {"u1": app})
        # Isolated functions have no transmission cost: shipping all of
        # them is free bandwidth-wise and relieves the device.
        assert result.consumption.transmission_energy == pytest.approx(0.0)
        assert result.scheme.offload_count("u1") > 0

    def test_zero_weight_functions(self):
        app = FunctionCallGraph("weightless")
        app.add_function("a", computation=0.0)
        app.add_function("b", computation=0.0)
        app.add_data_flow("a", "b", 1.0)
        result = make_planner("kl").plan_system(system_for(app), {"u1": app})
        assert result.consumption.energy >= 0.0

    def test_two_function_chain_each_strategy(self):
        for strategy in ("spectral", "maxflow", "kl"):
            app = FunctionCallGraph("pair")
            app.add_function("ui", computation=1.0, offloadable=False)
            app.add_function("work", computation=100.0)
            app.add_data_flow("ui", "work", 2.0)
            result = make_planner(strategy).plan_system(system_for(app), {"u1": app})
            assert "ui" not in result.scheme.remote_for("u1")


class TestExtremeParameters:
    def make_app(self):
        app = FunctionCallGraph("x")
        app.add_function("pin", computation=10.0, offloadable=False)
        for i in range(8):
            app.add_function(f"f{i}", computation=30.0)
        for i in range(7):
            app.add_data_flow(f"f{i}", f"f{i+1}", 5.0)
        app.add_data_flow("pin", "f0", 3.0)
        return app

    def test_free_bandwidth_offloads_everything_offloadable(self):
        app = self.make_app()
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=1.0,  # agonisingly slow device
                power_compute=10.0,
                power_transmit=0.001,
                bandwidth=1e6,
            ),
        )
        system = MECSystem(EdgeServer(1e6), [UserContext(device, app)])
        # The paper-default anchored seeding keeps one side of every
        # bisection on the device; the 'dominated' mode is the regime
        # knob for ship-everything conditions.
        config = PlannerConfig(initial_placement_mode="dominated")
        result = make_planner("spectral", config=config).plan_system(
            system, {"u1": app}
        )
        assert result.scheme.offload_count("u1") == 8

    def test_hostile_network_keeps_everything_local(self):
        app = self.make_app()
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=1e6,  # device is a supercomputer
                power_compute=0.001,
                power_transmit=1000.0,
                bandwidth=0.01,
            ),
        )
        system = MECSystem(EdgeServer(1.0), [UserContext(device, app)])
        result = make_planner("spectral").plan_system(system, {"u1": app})
        assert result.scheme.offload_count("u1") == 0

    def test_tiny_server_capacity_still_finishes(self):
        app = self.make_app()
        result = make_planner("spectral").plan_system(
            system_for(app, server_capacity=0.001), {"u1": app}
        )
        assert result.consumption.time < float("inf")

    def test_huge_weights_no_overflow(self):
        app = FunctionCallGraph("huge")
        app.add_function("a", computation=1e15)
        app.add_function("b", computation=1e15)
        app.add_data_flow("a", "b", 1e12)
        result = make_planner("spectral").plan_system(system_for(app), {"u1": app})
        assert result.consumption.energy < float("inf")


class TestPlannerRobustness:
    def test_min_cut_size_respected(self):
        app = FunctionCallGraph("small-comp")
        for i in range(3):
            app.add_function(f"f{i}", computation=5.0)
        app.add_data_flow("f0", "f1", 1.0)  # one 2-node component + isolate
        config = PlannerConfig(min_cut_size=5)
        planner = OffloadingPlanner(
            spectral_cut_strategy(), config=config, strategy_name="s"
        )
        plan = planner.plan_user(app)
        # Nothing reaches the cut stage: every component is one part.
        assert all(not (one and two) for one, two in plan.bisections)

    def test_plan_user_is_idempotent(self):
        from repro.workloads.applications import synthesize_application

        app = synthesize_application("idem", n_functions=40, seed=13)
        planner = make_planner("spectral")
        first = planner.plan_user(app)
        second = planner.plan_user(app)
        assert first.parts == second.parts
        assert first.bisections == second.bisections

    def test_mixed_users_some_fully_pinned(self):
        pinned = FunctionCallGraph("pinned")
        pinned.add_function("a", computation=50.0, offloadable=False)
        free = FunctionCallGraph("free")
        free.add_function("b", computation=50.0)
        users = [
            UserContext(MobileDevice("u1", profile=PROFILE), pinned),
            UserContext(MobileDevice("u2", profile=PROFILE), free),
        ]
        system = MECSystem(EdgeServer(300.0), users)
        result = make_planner("spectral").plan_system(
            system, {"u1": pinned, "u2": free}
        )
        assert result.scheme.remote_for("u1") == set()
        assert result.consumption.per_user["u1"].local_energy > 0.0

    def test_self_links_in_graph_construction(self):
        g = WeightedGraph()
        g.add_node("a")
        with pytest.raises(ValueError):
            g.add_edge("a", "a")


class TestPartitionedApplicationEdges:
    def test_empty_part_sets_filtered(self):
        app = FunctionCallGraph("e")
        app.add_function("f", computation=1.0)
        papp = PartitionedApplication("u1", app, [set(), {"f"}, set()])
        assert papp.part_count == 1

    def test_no_offloadable_functions(self):
        app = FunctionCallGraph("all-pinned")
        app.add_function("a", computation=1.0, offloadable=False)
        papp = PartitionedApplication("u1", app, [])
        assert papp.part_count == 0
        assert papp.local_weight(set()) == 1.0
        assert papp.cut_weight(set()) == 0.0
