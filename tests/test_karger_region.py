"""Tests for Karger's randomized min cut and region-growing bisection."""

import pytest

from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.karger import karger_min_cut
from repro.mincut.stoer_wagner import stoer_wagner_min_cut
from repro.partition.region_growth import region_growth_bisect


class TestKarger:
    def test_finds_bridge_cut(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=0.5)
        result = karger_min_cut(g, trials=50, seed=1)
        assert result.cut_value == pytest.approx(0.5)
        assert result.part_one in (set(range(4)), set(range(4, 8)))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_stoer_wagner_with_enough_trials(self, seed):
        g = random_connected_graph(10, 18, seed=seed)
        deterministic, _ = stoer_wagner_min_cut(g)
        randomized = karger_min_cut(g, trials=150, seed=seed)
        assert randomized.cut_value == pytest.approx(deterministic)

    def test_cut_value_is_certified_by_partition(self):
        g = random_connected_graph(12, 24, seed=3)
        result = karger_min_cut(g, trials=60, seed=3)
        assert g.cut_weight(result.part_one) == pytest.approx(result.cut_value)

    def test_never_below_optimum(self):
        """Monte Carlo can miss the optimum but never beat it."""
        for seed in range(5):
            g = random_connected_graph(9, 15, seed=seed)
            optimum, _ = stoer_wagner_min_cut(g)
            result = karger_min_cut(g, trials=5, seed=seed)  # deliberately few
            assert result.cut_value >= optimum - 1e-9

    def test_deterministic_for_seed(self):
        g = random_connected_graph(10, 20, seed=4)
        a = karger_min_cut(g, trials=20, seed=7)
        b = karger_min_cut(g, trials=20, seed=7)
        assert a.cut_value == b.cut_value
        assert a.part_one == b.part_one

    def test_default_trial_budget(self):
        g = random_connected_graph(8, 14, seed=5)
        result = karger_min_cut(g, seed=5)
        assert 10 <= result.trials <= 200

    def test_invalid_inputs(self):
        g = WeightedGraph()
        g.add_node("x")
        with pytest.raises(ValueError):
            karger_min_cut(g)
        with pytest.raises(ValueError):
            karger_min_cut(path_graph(3), trials=0)


class TestRegionGrowth:
    def test_partition_covers_graph(self):
        g = random_connected_graph(20, 40, seed=6)
        result = region_growth_bisect(g)
        assert result.part_one | result.part_two == set(g.nodes())
        assert not result.part_one & result.part_two
        assert result.part_one and result.part_two
        assert result.cut_value == pytest.approx(g.cut_weight(result.part_one))

    def test_near_half_weight(self):
        g = random_connected_graph(30, 60, seed=7)
        result = region_growth_bisect(g)
        weight_one = sum(g.node_weight(n) for n in result.part_one)
        total = g.total_node_weight()
        assert 0.3 * total <= weight_one <= 0.75 * total

    def test_grows_within_cluster_first(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=0.5)
        result = region_growth_bisect(g, seed_node=0)
        # Equal-weight clusters: the region is exactly the seed's cluster.
        assert result.part_one == set(range(5))
        assert result.cut_value == pytest.approx(0.5)

    def test_explicit_seed_respected(self):
        g = two_cluster_graph(4, intra_weight=5.0, bridge_weight=1.0)
        result = region_growth_bisect(g, seed_node=6)
        assert 6 in result.part_one
        assert result.seed_node == 6

    def test_missing_seed_rejected(self):
        with pytest.raises(KeyError):
            region_growth_bisect(path_graph(3), seed_node=99)

    def test_tiny_graphs(self):
        single = WeightedGraph()
        single.add_node("x")
        result = region_growth_bisect(single)
        assert result.part_one == {"x"}
        assert result.part_two == set()

        pair = path_graph(2)
        result = region_growth_bisect(pair)
        assert len(result.part_one) == 1
        assert len(result.part_two) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            region_growth_bisect(WeightedGraph())

    def test_deterministic(self):
        g = random_connected_graph(15, 30, seed=8)
        assert region_growth_bisect(g).part_one == region_growth_bisect(g).part_one

    def test_usually_worse_than_spectral_on_clustered(self):
        """The floor baseline: spectral should beat or tie it on the
        clustered workloads (that's why the paper's machinery exists)."""
        from repro.spectral.bisection import spectral_bisect
        from repro.workloads.netgen import NetgenConfig, netgen_graph
        from repro.graphs.components import largest_component

        wins = 0
        for seed in range(4):
            g = netgen_graph(
                NetgenConfig(n_nodes=120, n_edges=500, seed=seed)
            )
            component = g.subgraph(largest_component(g))
            spectral = spectral_bisect(component).cut_value
            region = region_growth_bisect(component).cut_value
            if spectral <= region + 1e-9:
                wins += 1
        assert wins >= 3
