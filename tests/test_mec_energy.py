"""Tests for the MEC energy/time formulas, devices and admission."""

import pytest

from repro.mec.admission import (
    EqualShareAllocation,
    FCFSQueueAllocation,
    ProportionalShareAllocation,
)
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.energy import (
    ConsumptionBreakdown,
    local_compute_time,
    local_energy,
    remote_compute_time,
    transmission_energy,
    transmission_time,
)
from repro.mec.objective import ObjectiveWeights


class TestFormulas:
    def test_formula1_local_time(self):
        assert local_compute_time(100.0, 20.0) == 5.0
        assert local_compute_time(0.0, 20.0) == 0.0

    def test_formula2_remote_time(self):
        assert remote_compute_time(100.0, 50.0, waiting=2.0) == 4.0
        # Zero remote load short-circuits regardless of allocation.
        assert remote_compute_time(0.0, 0.0, waiting=5.0) == 0.0

    def test_formula2_requires_capacity_when_loaded(self):
        with pytest.raises(ValueError):
            remote_compute_time(10.0, 0.0, waiting=0.0)

    def test_formula3_local_energy(self):
        assert local_energy(5.0, 0.5) == 2.5

    def test_formula4_transmission_energy(self):
        # e_t = cut * p_t / b
        assert transmission_energy(100.0, 6.0, 50.0) == 12.0

    def test_formula5_transmission_time(self):
        assert transmission_time(100.0, 50.0) == 2.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            local_compute_time(-1.0, 10.0)
        with pytest.raises(ValueError):
            transmission_energy(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            local_energy(1.0, 0.0)

    def test_breakdown_totals(self):
        b = ConsumptionBreakdown(
            local_energy=2.0,
            transmission_energy=3.0,
            local_time=1.0,
            remote_time=4.0,
            transmission_time=0.5,
            waiting_time=1.5,
        )
        assert b.energy == 5.0
        assert b.time == 5.5
        assert b.combined() == 10.5
        assert b.combined(energy_weight=2.0, time_weight=0.0) == 10.0

    def test_breakdown_addition(self):
        a = ConsumptionBreakdown(1, 1, 1, 1, 1, 1)
        b = ConsumptionBreakdown(2, 2, 2, 2, 2, 2)
        total = a + b
        assert total.energy == 6.0
        assert total.waiting_time == 3.0
        assert ConsumptionBreakdown.zero().energy == 0.0


class TestDevices:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(compute_capacity=0.0)
        with pytest.raises(ValueError):
            DeviceProfile(bandwidth=-1.0)

    def test_device_delegates_profile(self):
        profile = DeviceProfile(compute_capacity=42.0)
        device = MobileDevice("u1", profile=profile)
        assert device.compute_capacity == 42.0
        assert device.device_id == "u1"

    def test_server_validation(self):
        with pytest.raises(ValueError):
            EdgeServer(total_capacity=0.0)


class TestAllocation:
    server = EdgeServer(total_capacity=100.0)

    def test_equal_share(self):
        allocation = EqualShareAllocation().allocate(
            self.server, {"a": 10.0, "b": 20.0, "c": 0.0}
        )
        assert allocation.capacity_for("a") == 50.0
        assert allocation.capacity_for("b") == 50.0
        assert allocation.capacity_for("c") == 0.0
        assert allocation.waiting_for("a") == 0.0

    def test_equal_share_no_active_users(self):
        allocation = EqualShareAllocation().allocate(self.server, {"a": 0.0})
        assert allocation.capacity == {}

    def test_proportional_share(self):
        allocation = ProportionalShareAllocation().allocate(
            self.server, {"a": 10.0, "b": 30.0}
        )
        assert allocation.capacity_for("a") == pytest.approx(25.0)
        assert allocation.capacity_for("b") == pytest.approx(75.0)
        # Processor sharing: both finish at the same time total/capacity.
        assert 10.0 / 25.0 == pytest.approx(30.0 / 75.0)

    def test_fcfs_waiting_accumulates(self):
        allocation = FCFSQueueAllocation().allocate(
            self.server, {"u1": 50.0, "u2": 30.0, "u3": 20.0}
        )
        assert allocation.waiting_for("u1") == 0.0
        assert allocation.waiting_for("u2") == pytest.approx(0.5)
        assert allocation.waiting_for("u3") == pytest.approx(0.8)
        assert allocation.capacity_for("u3") == 100.0

    def test_fcfs_skips_idle_users(self):
        allocation = FCFSQueueAllocation().allocate(
            self.server, {"u1": 0.0, "u2": 30.0}
        )
        assert allocation.waiting_for("u2") == 0.0
        assert allocation.capacity_for("u1") == 0.0

    def test_fcfs_order_is_by_user_id(self):
        allocation = FCFSQueueAllocation().allocate(
            self.server, {"z": 10.0, "a": 40.0}
        )
        # "a" sorts first, so "z" waits behind a's 40 units.
        assert allocation.waiting_for("a") == 0.0
        assert allocation.waiting_for("z") == pytest.approx(0.4)


class TestObjective:
    def test_default_is_unweighted_sum(self):
        assert ObjectiveWeights().combine(3.0, 4.0) == 7.0

    def test_weighted(self):
        assert ObjectiveWeights(energy=2.0, time=0.5).combine(3.0, 4.0) == 8.0

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(energy=0.0, time=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(energy=-1.0)
