"""Tests for the discrete-event simulation substrate."""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import (
    BandwidthChange,
    EventQueue,
    ServerDegradation,
    simulate_scheme,
)

PROFILE = DeviceProfile(
    compute_capacity=10.0, power_compute=2.0, power_transmit=5.0, bandwidth=20.0
)


def one_user_setup(local=100.0, remote=200.0, cut=40.0, capacity=50.0):
    """A hand-built app with exact local/remote/cut quantities."""
    fcg = FunctionCallGraph("sim")
    fcg.add_function("pin", computation=local, offloadable=False)
    fcg.add_function("ship", computation=remote)
    if cut > 0:
        fcg.add_data_flow("pin", "ship", cut)
    app = PartitionedApplication("u1", fcg, [{"ship"}])
    device = MobileDevice("u1", profile=PROFILE)
    system = MECSystem(EdgeServer(capacity), [UserContext(device, fcg)])
    return system, {"u1": app}


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        for name in "abc":
            q.push(1.0, name)
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")


class TestSingleUser:
    def test_timeline_matches_formulas(self):
        system, apps = one_user_setup()
        report = simulate_scheme(system, apps, {"u1": {0}})
        t = report.timeline("u1")
        assert t.local_finish == pytest.approx(100.0 / 10.0)  # formula (1)
        assert t.upload_finish == pytest.approx(40.0 / 20.0)  # formula (5)
        assert t.service_finish == pytest.approx(2.0 + 200.0 / 50.0)
        assert t.local_energy == pytest.approx(10.0 * 2.0)  # formula (3)
        assert t.transmission_energy == pytest.approx(2.0 * 5.0)  # (4): cut*p_t/b
        assert t.completion == pytest.approx(10.0)  # local side dominates
        assert report.makespan == pytest.approx(10.0)

    def test_all_local_no_network_activity(self):
        system, apps = one_user_setup()
        report = simulate_scheme(system, apps, {"u1": set()})
        t = report.timeline("u1")
        assert t.remote_work == 0.0
        assert t.upload_finish == 0.0
        assert t.transmission_energy == 0.0
        assert t.local_finish == pytest.approx(300.0 / 10.0)

    def test_zero_cut_remote_starts_immediately(self):
        system, apps = one_user_setup(cut=0.0)
        report = simulate_scheme(system, apps, {"u1": {0}})
        t = report.timeline("u1")
        assert t.upload_finish == pytest.approx(0.0)
        assert t.service_start == pytest.approx(0.0)
        assert t.service_finish == pytest.approx(4.0)

    def test_energy_consistent_with_analytic_model(self):
        """Simulated E must equal the closed-form E of the MEC model."""
        system, apps = one_user_setup()
        placement = {"u1": {0}}
        report = simulate_scheme(system, apps, placement)
        analytic = system.evaluate_placement(apps, placement)
        assert report.total_energy == pytest.approx(analytic.energy)
        assert report.total_local_energy == pytest.approx(analytic.local_energy)
        assert report.total_transmission_energy == pytest.approx(
            analytic.transmission_energy
        )


class TestMultiUserQueueing:
    def make_two_users(self, capacity=50.0):
        system_users = []
        apps = {}
        for uid, (local, remote, cut) in {
            "u1": (50.0, 100.0, 20.0),
            "u2": (30.0, 150.0, 40.0),
        }.items():
            fcg = FunctionCallGraph(uid)
            fcg.add_function("pin", computation=local, offloadable=False)
            fcg.add_function("ship", computation=remote)
            fcg.add_data_flow("pin", "ship", cut)
            apps[uid] = PartitionedApplication(uid, fcg, [{"ship"}])
            system_users.append(UserContext(MobileDevice(uid, profile=PROFILE), fcg))
        system = MECSystem(EdgeServer(capacity), system_users)
        return system, apps

    def test_fcfs_order_by_upload_completion(self):
        system, apps = self.make_two_users()
        report = simulate_scheme(system, apps, {"u1": {0}, "u2": {0}})
        t1, t2 = report.timeline("u1"), report.timeline("u2")
        # u1 uploads 20 units (1s), u2 uploads 40 (2s): u1 served first.
        assert t1.upload_finish == pytest.approx(1.0)
        assert t2.upload_finish == pytest.approx(2.0)
        assert t1.service_start == pytest.approx(1.0)
        assert t1.service_finish == pytest.approx(1.0 + 100.0 / 50.0)
        # u2 arrived at 2.0 but the server is busy until 3.0.
        assert t2.service_start == pytest.approx(3.0)
        assert t2.waiting == pytest.approx(1.0)
        assert t2.service_finish == pytest.approx(3.0 + 150.0 / 50.0)

    def test_server_utilization_and_busy(self):
        system, apps = self.make_two_users()
        report = simulate_scheme(system, apps, {"u1": {0}, "u2": {0}})
        assert report.server_busy == pytest.approx(2.0 + 3.0)
        assert 0.0 < report.server_utilization <= 1.0

    def test_uploads_run_in_parallel(self):
        """Each user owns their uplink: uploads overlap in time."""
        system, apps = self.make_two_users()
        report = simulate_scheme(system, apps, {"u1": {0}, "u2": {0}})
        # If uploads were serialised, u2 would finish at 3.0, not 2.0.
        assert report.timeline("u2").upload_finish == pytest.approx(2.0)

    def test_sum_matches_analytic_under_instant_network(self):
        """With a near-infinite uplink the simulation reduces exactly to
        the analytic FCFS model (waiting = backlog of earlier users)."""
        fast = DeviceProfile(
            compute_capacity=10.0,
            power_compute=2.0,
            power_transmit=5.0,
            bandwidth=1e9,
        )
        users, apps = [], {}
        for uid, remote in (("u1", 100.0), ("u2", 150.0), ("u3", 50.0)):
            fcg = FunctionCallGraph(uid)
            fcg.add_function("pin", computation=10.0, offloadable=False)
            fcg.add_function("ship", computation=remote)
            apps[uid] = PartitionedApplication(uid, fcg, [{"ship"}])
            users.append(UserContext(MobileDevice(uid, profile=fast), fcg))
        system = MECSystem(EdgeServer(50.0), users)
        placement = {uid: {0} for uid in apps}

        report = simulate_scheme(system, apps, placement)
        analytic = system.evaluate_placement(apps, placement)
        for uid in apps:
            timeline = report.timeline(uid)
            breakdown = analytic.per_user[uid]
            simulated_remote = timeline.service_finish - timeline.upload_finish
            assert simulated_remote == pytest.approx(breakdown.remote_time, abs=1e-6)


class TestFaults:
    def test_server_degradation_slows_service(self):
        system, apps = one_user_setup(cut=0.0)  # service runs 0..4s at 50/s
        healthy = simulate_scheme(system, apps, {"u1": {0}})
        degraded = simulate_scheme(
            system, apps, {"u1": {0}}, faults=[ServerDegradation(time=2.0, factor=0.5)]
        )
        # 2s at 50/s (100 done) + 100 remaining at 25/s = 4 more seconds.
        assert healthy.timeline("u1").service_finish == pytest.approx(4.0)
        assert degraded.timeline("u1").service_finish == pytest.approx(6.0)

    def test_server_recovery_speeds_service(self):
        system, apps = one_user_setup(cut=0.0)
        boosted = simulate_scheme(
            system, apps, {"u1": {0}}, faults=[ServerDegradation(time=2.0, factor=2.0)]
        )
        # 2s at 50/s + 100 remaining at 100/s = 1 more second.
        assert boosted.timeline("u1").service_finish == pytest.approx(3.0)

    def test_bandwidth_drop_slows_upload_and_costs_energy(self):
        system, apps = one_user_setup()  # upload 40 units at 20/s = 2s
        faulted = simulate_scheme(
            system,
            apps,
            {"u1": {0}},
            faults=[BandwidthChange(time=1.0, user_id="u1", factor=0.5)],
        )
        t = faulted.timeline("u1")
        # 1s at 20/s (20 sent) + 20 remaining at 10/s = 2 more seconds.
        assert t.upload_finish == pytest.approx(3.0)
        # Energy is power x actual duration: longer upload costs more.
        assert t.transmission_energy == pytest.approx(3.0 * 5.0)

    def test_fault_after_completion_is_harmless(self):
        system, apps = one_user_setup(cut=0.0)
        report = simulate_scheme(
            system,
            apps,
            {"u1": {0}},
            faults=[ServerDegradation(time=100.0, factor=0.1)],
        )
        assert report.timeline("u1").service_finish == pytest.approx(4.0)

    def test_fault_on_unknown_user_rejected(self):
        system, apps = one_user_setup()
        with pytest.raises(ValueError, match="unknown user"):
            simulate_scheme(
                system,
                apps,
                {"u1": {0}},
                faults=[BandwidthChange(time=1.0, user_id="ghost", factor=0.5)],
            )

    def test_invalid_fault_parameters(self):
        with pytest.raises(ValueError):
            ServerDegradation(time=-1.0)
        with pytest.raises(ValueError):
            ServerDegradation(time=1.0, factor=0.0)
        with pytest.raises(ValueError):
            BandwidthChange(time=1.0, user_id="", factor=0.5)


class TestEndToEndWithPlanner:
    def test_planned_scheme_executes(self):
        """Plan with the paper pipeline, then execute the plan."""
        from repro.core import make_planner
        from repro.workloads.applications import synthesize_application

        app = synthesize_application("sim-app", n_functions=40, seed=3)
        device = MobileDevice("u1", profile=PROFILE)
        system = MECSystem(EdgeServer(300.0), [UserContext(device, app)])
        planner = make_planner("spectral")
        result = planner.plan_system(system, {"u1": app})

        apps = {
            "u1": PartitionedApplication("u1", app, result.user_plans["u1"].parts)
        }
        report = simulate_scheme(system, apps, result.greedy.remote_parts)
        analytic = result.consumption
        # Energies agree exactly (both are duration x power with the same
        # durations when the network is healthy).
        assert report.total_energy == pytest.approx(analytic.energy, rel=1e-9)
        assert report.makespan > 0.0
        assert report.events_processed > 0
