"""Tests for Kernighan-Lin and the FM refinement pass."""

import pytest

from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.partition.refinement import fm_refine


class TestKernighanLin:
    def test_balanced_sizes(self):
        g = random_connected_graph(20, 40, seed=1)
        result = kernighan_lin_bisect(g)
        assert abs(len(result.part_one) - len(result.part_two)) <= 1

    def test_partition_covers_graph(self):
        g = random_connected_graph(15, 28, seed=2)
        result = kernighan_lin_bisect(g)
        assert result.part_one | result.part_two == set(g.nodes())
        assert not result.part_one & result.part_two

    def test_cut_value_consistent(self):
        g = random_connected_graph(16, 30, seed=3)
        result = kernighan_lin_bisect(g)
        assert result.cut_value == pytest.approx(g.cut_weight(result.part_one))

    def test_improves_over_naive_split(self):
        """KL must beat (or tie) the alternating initial partition."""
        g = two_cluster_graph(6, intra_weight=10.0, bridge_weight=1.0)
        nodes = g.node_list()
        naive = {n for i, n in enumerate(nodes) if i % 2 == 0}
        naive_cut = g.cut_weight(naive)
        result = kernighan_lin_bisect(g)
        assert result.cut_value <= naive_cut

    def test_two_clusters_found(self):
        """On equal-size clusters the balanced optimum is the bridge cut."""
        g = two_cluster_graph(6, intra_weight=10.0, bridge_weight=1.0)
        result = kernighan_lin_bisect(g)
        assert result.cut_value == pytest.approx(1.0)
        assert result.part_one in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})

    def test_comparable_to_networkx_kl(self):
        networkx = pytest.importorskip("networkx")
        for seed in range(3):
            g = random_connected_graph(14, 30, seed=seed)
            nxg = networkx.Graph()
            for u, v, w in g.edges():
                nxg.add_edge(u, v, weight=w)
            theirs = networkx.algorithms.community.kernighan_lin_bisection(
                nxg, weight="weight", seed=seed
            )
            their_cut = g.cut_weight(theirs[0])
            ours = kernighan_lin_bisect(g)
            # Same heuristic family: within 2x of each other's cut.
            assert ours.cut_value <= 2.0 * their_cut + 1e-9

    def test_single_node(self):
        g = WeightedGraph()
        g.add_node("x")
        result = kernighan_lin_bisect(g)
        assert result.part_one == {"x"}
        assert result.cut_value == 0.0

    def test_two_nodes(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=4.0)
        result = kernighan_lin_bisect(g)
        assert result.cut_value == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kernighan_lin_bisect(WeightedGraph())

    def test_seeded_shuffle_deterministic(self):
        g = random_connected_graph(12, 22, seed=4)
        a = kernighan_lin_bisect(g, seed=42)
        b = kernighan_lin_bisect(g, seed=42)
        assert a.part_one == b.part_one

    def test_passes_bounded(self):
        g = random_connected_graph(18, 35, seed=5)
        result = kernighan_lin_bisect(g, max_passes=3)
        assert result.passes <= 3


class TestFMRefinement:
    def test_never_increases_cut(self):
        for seed in range(4):
            g = random_connected_graph(14, 28, seed=seed)
            nodes = g.node_list()
            start = set(nodes[: len(nodes) // 2])
            before = g.cut_weight(start)
            _, _, after = fm_refine(g, start)
            assert after <= before + 1e-9

    def test_fixes_bad_split(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=1.0)
        # Deliberately wrong split mixing the clusters.
        bad = {0, 1, 5, 6}
        before = g.cut_weight(bad)
        one, two, after = fm_refine(g, bad, min_side_fraction=0.2)
        assert after < before
        assert one | two == set(g.nodes())

    def test_balance_floor_respected(self):
        g = random_connected_graph(20, 40, seed=6)
        nodes = g.node_list()
        one, two, _ = fm_refine(g, set(nodes[:10]), min_side_fraction=0.25)
        assert len(one) >= 5
        assert len(two) >= 5

    def test_tiny_graph_passthrough(self):
        g = path_graph(2)
        one, two, cut = fm_refine(g, {0})
        assert one == {0}
        assert two == {1}
        assert cut == 1.0

    def test_returns_consistent_cut(self):
        g = random_connected_graph(12, 24, seed=7)
        one, _, cut = fm_refine(g, set(g.node_list()[:6]))
        assert cut == pytest.approx(g.cut_weight(one))
