"""Tests for max-flow / min-cut algorithms and s-t selection."""

import pytest

from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.dinic import dinic_max_flow
from repro.mincut.edmonds_karp import edmonds_karp
from repro.mincut.residual import ResidualNetwork
from repro.mincut.st_selection import maxflow_bisect, select_source_sink
from repro.mincut.stoer_wagner import stoer_wagner_min_cut


def diamond() -> WeightedGraph:
    """s - (a|b) - t diamond with known max flow 5."""
    g = WeightedGraph()
    for n in "sabt":
        g.add_node(n)
    g.add_edge("s", "a", weight=3.0)
    g.add_edge("s", "b", weight=2.0)
    g.add_edge("a", "t", weight=2.0)
    g.add_edge("b", "t", weight=3.0)
    g.add_edge("a", "b", weight=1.0)
    return g


class TestResidual:
    def test_initial_capacities(self, triangle):
        network = ResidualNetwork(triangle)
        assert network.residual("a", "b") == 1.0
        assert network.residual("b", "a") == 1.0
        assert network.residual("a", "ghost") == 0.0

    def test_push_updates_both_directions(self, triangle):
        network = ResidualNetwork(triangle)
        network.push("a", "c", 2.0)
        assert network.residual("a", "c") == 1.0
        assert network.residual("c", "a") == 5.0
        assert network.flow_on("a", "c") == 2.0

    def test_overpush_rejected(self, triangle):
        network = ResidualNetwork(triangle)
        with pytest.raises(ValueError, match="cannot push"):
            network.push("a", "b", 5.0)

    def test_nonpositive_push_rejected(self, triangle):
        network = ResidualNetwork(triangle)
        with pytest.raises(ValueError):
            network.push("a", "b", 0.0)

    def test_reachability_after_saturation(self):
        g = path_graph(3, edge_weight=1.0)
        network = ResidualNetwork(g)
        network.push(0, 1, 1.0)
        assert network.reachable_from(0) == {0}


class TestEdmondsKarp:
    def test_diamond_flow_value(self):
        result = edmonds_karp(diamond(), "s", "t")
        assert result.value == pytest.approx(5.0)

    def test_path_bottleneck(self):
        g = WeightedGraph()
        for n in range(4):
            g.add_node(n)
        g.add_edge(0, 1, weight=5.0)
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(2, 3, weight=5.0)
        result = edmonds_karp(g, 0, 3)
        assert result.value == pytest.approx(1.0)
        assert result.source_side == {0, 1}

    def test_cut_certificate_matches_value(self):
        g = random_connected_graph(12, 25, seed=3)
        result = edmonds_karp(g, 0, 11)
        assert g.cut_weight(result.source_side) == pytest.approx(result.value)

    def test_duality_against_networkx(self):
        networkx = pytest.importorskip("networkx")
        for seed in range(4):
            g = random_connected_graph(10, 20, seed=seed)
            nxg = networkx.Graph()
            for u, v, w in g.edges():
                nxg.add_edge(u, v, capacity=w)
            expected, _ = networkx.minimum_cut(nxg, 0, 9)
            result = edmonds_karp(g, 0, 9)
            assert result.value == pytest.approx(expected)

    def test_two_clusters_min_cut_is_bridge(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.5)
        result = edmonds_karp(g, 0, 7)
        assert result.value == pytest.approx(1.5)
        assert result.source_side == {0, 1, 2, 3}

    def test_same_endpoints_rejected(self, triangle):
        with pytest.raises(ValueError):
            edmonds_karp(triangle, "a", "a")

    def test_missing_endpoint_rejected(self, triangle):
        with pytest.raises(KeyError):
            edmonds_karp(triangle, "a", "ghost")

    def test_sides_partition(self):
        g = random_connected_graph(9, 16, seed=5)
        result = edmonds_karp(g, 0, 8)
        assert result.source_side | result.sink_side == set(g.nodes())
        assert not result.source_side & result.sink_side


class TestDinic:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_edmonds_karp(self, seed):
        g = random_connected_graph(12, 26, seed=seed)
        ek = edmonds_karp(g, 0, 11)
        dn = dinic_max_flow(g, 0, 11)
        assert dn.value == pytest.approx(ek.value)

    def test_cut_certificate(self):
        g = random_connected_graph(10, 20, seed=7)
        result = dinic_max_flow(g, 0, 9)
        assert g.cut_weight(result.source_side) == pytest.approx(result.value)

    def test_diamond(self):
        assert dinic_max_flow(diamond(), "s", "t").value == pytest.approx(5.0)

    def test_phases_bounded(self):
        g = random_connected_graph(15, 30, seed=8)
        result = dinic_max_flow(g, 0, 14)
        assert result.augmentations <= g.node_count


class TestStoerWagner:
    def test_two_clusters_global_cut(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=0.7)
        value, side = stoer_wagner_min_cut(g)
        assert value == pytest.approx(0.7)
        assert side in ({0, 1, 2, 3}, {4, 5, 6, 7})

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_networkx(self, seed):
        networkx = pytest.importorskip("networkx")
        g = random_connected_graph(10, 22, seed=seed)
        nxg = networkx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        expected, _ = networkx.stoer_wagner(nxg)
        value, side = stoer_wagner_min_cut(g)
        assert value == pytest.approx(expected)
        assert g.cut_weight(side) == pytest.approx(value)

    def test_too_small_rejected(self):
        g = WeightedGraph()
        g.add_node("only")
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(g)

    def test_global_leq_any_st_cut(self):
        g = random_connected_graph(11, 20, seed=9)
        global_value, _ = stoer_wagner_min_cut(g)
        st = edmonds_karp(g, 0, 10)
        assert global_value <= st.value + 1e-9


class TestSTSelection:
    def test_source_is_busiest(self, clusters):
        source, sink = select_source_sink(clusters)
        assert clusters.weighted_degree(source) == max(
            clusters.weighted_degree(n) for n in clusters.nodes()
        )
        assert source != sink

    def test_bisect_partitions(self):
        g = random_connected_graph(12, 22, seed=10)
        result = maxflow_bisect(g)
        assert result.part_one | result.part_two == set(g.nodes())
        assert result.cut_value == pytest.approx(g.cut_weight(result.part_one))

    def test_bisect_single_node(self):
        g = WeightedGraph()
        g.add_node("x")
        result = maxflow_bisect(g)
        assert result.part_one == {"x"}
        assert result.cut_value == 0.0

    def test_bisect_empty_rejected(self):
        with pytest.raises(ValueError):
            maxflow_bisect(WeightedGraph())

    def test_two_nodes_pair(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=2.0)
        source, sink = select_source_sink(g)
        assert {source, sink} == {"a", "b"}
