"""Tests for the bytecode interpreter and the Gomory-Hu tree."""

import pytest

from repro.callgraph.bytecode import ApplicationBinary
from repro.callgraph.extractor import extract_call_graph
from repro.callgraph.interpreter import BytecodeInterpreter, profile_application
from repro.graphs.generators import random_connected_graph, two_cluster_graph
from repro.mincut.edmonds_karp import edmonds_karp
from repro.mincut.gomory_hu import gomory_hu_tree
from repro.mincut.stoer_wagner import stoer_wagner_min_cut
from repro.graphs.weighted_graph import WeightedGraph


def tree_binary() -> ApplicationBinary:
    """A call tree: every function invoked exactly once."""
    binary = ApplicationBinary("tree", entry_point="main")
    main = binary.define("main")
    main.compute(5.0)
    main.call("left", 10.0)
    main.call("right", 8.0)
    left = binary.define("left")
    left.compute(20.0).call("leaf", 12.0).return_data(4.0)
    binary.define("right").compute(15.0).return_data(6.0)
    binary.define("leaf").compute(30.0).sensor_read().return_data(7.0)
    return binary


class TestInterpreter:
    def test_compute_measured(self):
        profile = profile_application(tree_binary())
        assert profile.compute_per_function == {
            "main": 5.0,
            "left": 20.0,
            "right": 15.0,
            "leaf": 30.0,
        }
        assert profile.total_compute == 70.0

    def test_traffic_measured_with_returns(self):
        profile = profile_application(tree_binary())
        assert profile.traffic_between("main", "left") == pytest.approx(10.0 + 4.0)
        assert profile.traffic_between("main", "right") == pytest.approx(8.0 + 6.0)
        assert profile.traffic_between("left", "leaf") == pytest.approx(12.0 + 7.0)
        assert profile.traffic_between("main", "leaf") == 0.0

    def test_dynamic_matches_static_on_call_trees(self):
        """The static extractor and the dynamic profile must agree on
        every call-tree binary (each function invoked once)."""
        binary = tree_binary()
        static = extract_call_graph(binary)
        dynamic = profile_application(binary)
        for name in binary.functions:
            assert static.graph.node_weight(name) == pytest.approx(
                dynamic.compute_per_function.get(name, 0.0)
            )
        for u, v, weight in static.graph.edges():
            assert dynamic.traffic_between(u, v) == pytest.approx(weight)

    def test_call_counts_and_depth(self):
        profile = profile_application(tree_binary())
        assert profile.call_count["main"] == 1
        assert profile.call_count["leaf"] == 1
        assert profile.max_call_depth == 3

    def test_device_touches_recorded(self):
        profile = profile_application(tree_binary())
        assert profile.device_touches == {"leaf": 1}

    def test_repeated_calls_double_dynamic_traffic(self):
        binary = ApplicationBinary("rep", entry_point="main")
        binary.define("main").call("w", 5.0).call("w", 5.0)
        binary.define("w").compute(2.0).return_data(3.0)
        profile = profile_application(binary)
        # Dynamic: both invocations pay args and returns.
        assert profile.traffic_between("main", "w") == pytest.approx(2 * 5.0 + 2 * 3.0)
        assert profile.compute_per_function["w"] == pytest.approx(4.0)

    def test_recursion_guard(self):
        binary = ApplicationBinary("rec", entry_point="loop")
        binary.define("loop").call("loop", 1.0)
        with pytest.raises(RecursionError, match="call depth"):
            BytecodeInterpreter(binary, max_depth=50).run()

    def test_invalid_binary_rejected(self):
        binary = ApplicationBinary("bad", entry_point="missing")
        binary.define("f")
        with pytest.raises(ValueError):
            BytecodeInterpreter(binary)


class TestGomoryHu:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pairwise_cuts_match_direct_maxflow(self, seed):
        g = random_connected_graph(9, 16, seed=seed)
        tree = gomory_hu_tree(g)
        nodes = g.node_list()
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                direct = edmonds_karp(g, nodes[i], nodes[j]).value
                via_tree = tree.min_cut_value(nodes[i], nodes[j])
                assert via_tree == pytest.approx(direct), (nodes[i], nodes[j])

    def test_lightest_edge_is_global_min_cut(self):
        for seed in range(3):
            g = random_connected_graph(10, 20, seed=seed)
            tree = gomory_hu_tree(g)
            tree_value, child = tree.global_min_cut()
            sw_value, _ = stoer_wagner_min_cut(g)
            assert tree_value == pytest.approx(sw_value)
            # The tree side is a certificate: its cut weight matches.
            side = tree.side_of(child)
            assert g.cut_weight(side) == pytest.approx(tree_value)

    def test_two_clusters_tree_edge(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.5)
        tree = gomory_hu_tree(g)
        value, child = tree.global_min_cut()
        assert value == pytest.approx(1.5)
        assert tree.side_of(child) in (set(range(4)), set(range(4, 8)))

    def test_tree_structure(self):
        g = random_connected_graph(8, 14, seed=5)
        tree = gomory_hu_tree(g)
        assert len(tree.edges()) == g.node_count - 1
        assert tree.parent[tree.root] is None

    def test_same_node_rejected(self):
        g = random_connected_graph(5, 7, seed=6)
        tree = gomory_hu_tree(g)
        with pytest.raises(ValueError):
            tree.min_cut_value(0, 0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            gomory_hu_tree(WeightedGraph())

    def test_single_node_tree(self):
        g = WeightedGraph()
        g.add_node("x")
        tree = gomory_hu_tree(g)
        assert tree.edges() == []
        with pytest.raises(ValueError):
            tree.global_min_cut()
