"""Unit tests for the core weighted graph structure."""

import pytest

from repro.graphs.weighted_graph import WeightedGraph


class TestNodes:
    def test_add_and_query_node(self):
        g = WeightedGraph()
        g.add_node("a", weight=3.5, kind="compute")
        assert g.has_node("a")
        assert g.node_weight("a") == 3.5
        assert g.node_data("a") == {"kind": "compute"}
        assert g.node_count == 1

    def test_duplicate_node_rejected(self):
        g = WeightedGraph()
        g.add_node("a")
        with pytest.raises(ValueError, match="already exists"):
            g.add_node("a")

    def test_negative_node_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError, match=">= 0"):
            g.add_node("a", weight=-1.0)

    def test_remove_node_drops_incident_edges(self):
        g = WeightedGraph()
        for n in "abc":
            g.add_node(n)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.edge_count == 0
        assert not g.has_edge("a", "b")

    def test_remove_missing_node_raises(self):
        g = WeightedGraph()
        with pytest.raises(KeyError):
            g.remove_node("ghost")

    def test_set_node_weight(self):
        g = WeightedGraph()
        g.add_node("a", weight=1.0)
        g.set_node_weight("a", 9.0)
        assert g.node_weight("a") == 9.0

    def test_node_insertion_order_preserved(self):
        g = WeightedGraph()
        for n in ("z", "a", "m"):
            g.add_node(n)
        assert g.node_list() == ["z", "a", "m"]


class TestEdges:
    def test_add_edge_symmetric(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=4.0)
        assert g.edge_weight("a", "b") == 4.0
        assert g.edge_weight("b", "a") == 4.0
        assert g.edge_count == 1

    def test_parallel_edge_accumulates(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=4.0)
        g.add_edge("a", "b", weight=1.5)
        assert g.edge_weight("a", "b") == 5.5
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        g.add_node("a")
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge("a", "a")

    def test_non_positive_edge_weight_rejected(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("a", "b", weight=0.0)

    def test_edge_to_missing_node_raises(self):
        g = WeightedGraph()
        g.add_node("a")
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost")

    def test_remove_edge(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")

    def test_set_edge_weight_overwrites(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=2.0)
        g.set_edge_weight("a", "b", 7.0)
        assert g.edge_weight("b", "a") == 7.0

    def test_edges_yielded_once(self, triangle):
        edges = triangle.edge_list()
        assert len(edges) == 3
        pairs = {frozenset((u, v)) for u, v, _ in edges}
        assert len(pairs) == 3


class TestAggregates:
    def test_total_node_weight(self, triangle):
        assert triangle.total_node_weight() == 6.0

    def test_total_edge_weight(self, triangle):
        assert triangle.total_edge_weight() == 6.0

    def test_weighted_degree(self, triangle):
        assert triangle.weighted_degree("a") == 4.0
        assert triangle.weighted_degree("b") == 3.0
        assert triangle.weighted_degree("c") == 5.0

    def test_cut_weight_formula8(self, triangle):
        # Cut {a} vs {b, c}: edges a-b (1) and a-c (3).
        assert triangle.cut_weight({"a"}) == 4.0
        # Complement gives the same cut.
        assert triangle.cut_weight({"b", "c"}) == 4.0

    def test_cut_weight_empty_and_full(self, triangle):
        assert triangle.cut_weight(set()) == 0.0
        assert triangle.cut_weight({"a", "b", "c"}) == 0.0


class TestDerivation:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_node("a")
        assert triangle.has_node("a")
        assert triangle.edge_count == 3

    def test_subgraph_induced(self, triangle):
        sub = triangle.subgraph({"a", "b"})
        assert sub.node_count == 2
        assert sub.edge_count == 1
        assert sub.edge_weight("a", "b") == 1.0

    def test_merge_nodes_sums_weights(self, triangle):
        triangle.merge_nodes("a", "b")
        assert triangle.node_weight("a") == 3.0
        assert not triangle.has_node("b")
        # Edges a-c (3) and b-c (2) accumulate into a-c (5).
        assert triangle.edge_weight("a", "c") == 5.0

    def test_merge_preserves_totals(self, clusters):
        node_total = clusters.total_node_weight()
        internal = clusters.edge_weight(0, 1)
        external = clusters.total_edge_weight() - internal
        clusters.merge_nodes(0, 1)
        assert clusters.total_node_weight() == pytest.approx(node_total)
        assert clusters.total_edge_weight() == pytest.approx(external)

    def test_merge_self_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.merge_nodes("a", "a")

    def test_from_edges_constructor(self):
        g = WeightedGraph.from_edges(
            [("x", "y", 2.0), ("y", "z", 3.0)], node_weights={"x": 5.0}
        )
        assert g.node_count == 3
        assert g.node_weight("x") == 5.0
        assert g.node_weight("y") == 1.0
        assert g.edge_weight("y", "z") == 3.0


class TestDunder:
    def test_len_contains_iter(self, triangle):
        assert len(triangle) == 3
        assert "a" in triangle
        assert "ghost" not in triangle
        assert sorted(triangle) == ["a", "b", "c"]
