"""Tests for the random graph models, battery model, and sweep strategy."""

import pytest

from repro.core import make_planner
from repro.graphs.components import largest_component
from repro.graphs.metrics import average_clustering, average_degree
from repro.graphs.random_models import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graphs.validation import check_graph_invariants
from repro.mec.battery import BatteryModel
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.energy import ConsumptionBreakdown
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph


class TestErdosRenyi:
    def test_shape_and_invariants(self):
        g = erdos_renyi_graph(50, 0.1, seed=1)
        assert g.node_count == 50
        check_graph_invariants(g)

    def test_edge_count_near_expectation(self):
        g = erdos_renyi_graph(80, 0.2, seed=2)
        expected = 0.2 * 80 * 79 / 2
        assert 0.6 * expected < g.edge_count < 1.4 * expected

    def test_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=3).edge_count == 0
        assert erdos_renyi_graph(10, 1.0, seed=3).edge_count == 45

    def test_seeded_determinism(self):
        a = erdos_renyi_graph(30, 0.15, seed=4)
        b = erdos_renyi_graph(30, 0.15, seed=4)
        assert a.edge_list() == b.edge_list()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert_graph(60, attachments=2, seed=5)
        assert g.node_count == 60
        check_graph_invariants(g)
        # m new edges per node beyond the seed clique (up to duplicates).
        assert g.edge_count >= 60 - 3

    def test_hub_formation(self):
        g = barabasi_albert_graph(200, attachments=2, seed=6)
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        # Scale-free: the top hub dwarfs the median degree.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_connected(self):
        g = barabasi_albert_graph(100, attachments=3, seed=7)
        assert len(largest_component(g)) == 100

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(1, 1)
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, 10)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz_graph(20, ring_neighbors=4, rewire_probability=0.0, seed=8)
        assert g.edge_count == 20 * 2
        assert all(g.degree(n) == 4 for n in g.nodes())

    def test_high_clustering_at_low_rewiring(self):
        g = watts_strogatz_graph(100, ring_neighbors=6, rewire_probability=0.05, seed=9)
        assert average_clustering(g) > 0.3

    def test_rewiring_reduces_clustering(self):
        low = watts_strogatz_graph(100, 6, 0.0, seed=10)
        high = watts_strogatz_graph(100, 6, 1.0, seed=10)
        assert average_clustering(high) < average_clustering(low)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(2, 2)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3)  # odd neighbors
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 4, rewire_probability=2.0)


class TestTopologyRobustness:
    """Every planner must produce feasible schemes on every topology."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: erdos_renyi_graph(60, 0.08, seed=11),
            lambda: barabasi_albert_graph(60, attachments=2, seed=11),
            lambda: watts_strogatz_graph(60, 4, 0.1, seed=11),
        ],
        ids=["erdos-renyi", "barabasi-albert", "watts-strogatz"],
    )
    @pytest.mark.parametrize("strategy", ["spectral", "maxflow", "kl", "sweep"])
    def test_pipeline_on_topology(self, build, strategy):
        graph = build()
        app = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.05, seed=1)
        system = MECSystem(EdgeServer(300.0), [UserContext(MobileDevice("u1"), app)])
        result = make_planner(strategy).plan_system(system, {"u1": app})
        from repro.mec.validation import validate_scheme

        assert validate_scheme(system, {"u1": app}, result.scheme).ok
        assert result.consumption.energy > 0.0


class TestBattery:
    def consumption(self, energy: float) -> ConsumptionBreakdown:
        return ConsumptionBreakdown(
            local_energy=energy * 0.8,
            transmission_energy=energy * 0.2,
            local_time=1.0,
            remote_time=0.0,
            transmission_time=0.0,
            waiting_time=0.0,
        )

    def test_drain_and_feasibility(self):
        battery = BatteryModel(capacity=100.0, reserve_fraction=0.1)
        usage = self.consumption(30.0)
        assert battery.drain_fraction(usage) == pytest.approx(0.3)
        assert battery.is_feasible(usage)  # 30 <= 90 usable
        assert not battery.is_feasible(usage, charge_fraction=0.35)  # 25 avail

    def test_runs_per_charge(self):
        battery = BatteryModel(capacity=100.0, reserve_fraction=0.1)
        assert battery.runs_per_charge(self.consumption(30.0)) == 3
        assert battery.runs_per_charge(self.consumption(91.0)) == 0

    def test_lifetime_gain(self):
        battery = BatteryModel(capacity=100.0)
        gain = battery.lifetime_gain(self.consumption(20.0), self.consumption(50.0))
        assert gain == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity=0.0)
        with pytest.raises(ValueError):
            BatteryModel(capacity=10.0, reserve_fraction=1.5)
        battery = BatteryModel(capacity=10.0)
        with pytest.raises(ValueError):
            battery.runs_per_charge(self.consumption(0.0))

    def test_offloading_extends_lifetime_end_to_end(self):
        """The paper's motivating claim, measured on a real plan."""
        from repro.mec.scheme import PartitionedApplication
        from repro.workloads.applications import synthesize_application

        app = synthesize_application("battery", n_functions=60, seed=41)
        from repro.mec.devices import DeviceProfile

        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=10.0, power_compute=2.0, power_transmit=4.0, bandwidth=100.0
            ),
        )
        system = MECSystem(EdgeServer(500.0), [UserContext(device, app)])
        result = make_planner("spectral").plan_system(system, {"u1": app})
        papp = PartitionedApplication("u1", app, result.user_plans["u1"].parts)
        all_local = system.evaluate_placement({"u1": papp}, {"u1": set()})

        battery = BatteryModel(capacity=10_000.0)
        gain = battery.lifetime_gain(
            result.consumption.per_user["u1"], all_local.per_user["u1"]
        )
        assert gain > 1.0
