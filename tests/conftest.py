"""Shared fixtures for the test suite, plus the lock-sanitizer hook.

Run with ``REPRO_LOCK_SANITIZER=1`` to instrument every lock created
during the session (see :mod:`repro.analysis.runtime.sanitizer`): the
suite then also asserts a global property — no two threads ever
acquired the same pair of locks in opposite orders.  On any inversion
the session exits non-zero and the machine-readable report lands at
``lock-sanitizer-report.json`` (override with
``REPRO_LOCK_SANITIZER_REPORT``).
"""

from __future__ import annotations

import pytest

from repro.analysis.runtime.sanitizer import (
    active_sanitizer,
    install_from_env,
    report_path_from_env,
)
from repro.callgraph.model import FunctionCallGraph
from repro.graphs.generators import path_graph, two_cluster_graph
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext


def pytest_configure(config: pytest.Config) -> None:
    # As early as pytest allows: locks created before install are
    # invisible to the sanitizer.
    install_from_env()


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    sanitizer = active_sanitizer()
    if sanitizer is None:
        return
    report = sanitizer.report()
    sanitizer.write_report(report_path_from_env())
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    summary = (
        f"lock sanitizer: {report['orders_observed']} acquisition order(s) "
        f"observed, {len(sanitizer.inversions)} inversion(s), "
        f"{len(sanitizer.long_holds)} long hold(s)"
    )
    if reporter is not None:
        reporter.write_line(summary)
    if not sanitizer.clean:
        if reporter is not None:
            for inversion in sanitizer.inversions:
                reporter.write_line(
                    "lock-order inversion: "
                    f"{inversion.first.outer} -> {inversion.first.inner} "
                    f"on {inversion.first.thread}; reversed as "
                    f"{inversion.second.outer} -> {inversion.second.inner} "
                    f"on {inversion.second.thread}"
                )
        session.exitstatus = 1


@pytest.fixture
def triangle() -> WeightedGraph:
    """A weighted triangle: the smallest graph with a non-trivial cut."""
    graph = WeightedGraph()
    for name, weight in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
        graph.add_node(name, weight=weight)
    graph.add_edge("a", "b", weight=1.0)
    graph.add_edge("b", "c", weight=2.0)
    graph.add_edge("a", "c", weight=3.0)
    return graph


@pytest.fixture
def clusters() -> WeightedGraph:
    """Two dense clusters joined by a light bridge (min cut = bridge)."""
    return two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.0)


@pytest.fixture
def chain() -> WeightedGraph:
    """A 6-node path graph."""
    return path_graph(6)


@pytest.fixture
def small_call_graph() -> FunctionCallGraph:
    """Figure 1's example program: f1 calls f2/f3, f2 calls f4/f5."""
    fcg = FunctionCallGraph("figure1")
    fcg.add_function("f1", computation=5.0, offloadable=False)
    for name, computation in (("f2", 8.0), ("f3", 6.0), ("f4", 9.0), ("f5", 4.0)):
        fcg.add_function(name, computation=computation)
    fcg.add_data_flow("f1", "f2", 10.0)
    fcg.add_data_flow("f1", "f3", 8.0)
    fcg.add_data_flow("f2", "f4", 12.0)
    fcg.add_data_flow("f2", "f5", 7.0)
    return fcg


@pytest.fixture
def device_profile() -> DeviceProfile:
    """The tuned experiment device profile."""
    return DeviceProfile(
        compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
    )


@pytest.fixture
def single_user_system(small_call_graph, device_profile) -> tuple[MECSystem, dict]:
    """One-user MEC system around the Figure 1 call graph."""
    device = MobileDevice("u1", profile=device_profile)
    system = MECSystem(
        EdgeServer(total_capacity=200.0), [UserContext(device, small_call_graph)]
    )
    return system, {"u1": small_call_graph}
