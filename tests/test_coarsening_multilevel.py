"""Tests for heavy-edge coarsening and multilevel KL."""

import pytest

from repro.graphs.coarsening import (
    coarsen_graph,
    coarsen_once,
    coarsening_as_compression,
    heavy_edge_matching,
)
from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.validation import check_graph_invariants
from repro.graphs.weighted_graph import WeightedGraph
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.partition.multilevel import multilevel_kl_bisect
from repro.utils.rng import RandomSource


class TestMatching:
    def test_matching_is_symmetric_pairing(self):
        g = random_connected_graph(20, 40, seed=1)
        matching = heavy_edge_matching(g, RandomSource(1))
        for node, partner in matching.items():
            assert matching[partner] == node
            assert node != partner
            assert g.has_edge(node, partner)

    def test_heavy_edges_preferred(self):
        # Triangle with distinct weights: whichever node is visited first
        # picks its heaviest neighbor, so the lightest edge (a-b) can
        # never be the matched pair.
        g = WeightedGraph()
        for n in "abc":
            g.add_node(n)
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "c", weight=100.0)
        g.add_edge("a", "c", weight=50.0)
        for seed in range(10):
            matching = heavy_edge_matching(g, RandomSource(seed))
            assert matching, "triangle always yields one matched pair"
            assert matching.get("a") != "b"

    def test_isolated_nodes_unmatched(self):
        g = WeightedGraph()
        g.add_node("x")
        g.add_node("y")
        assert heavy_edge_matching(g, RandomSource(0)) == {}


class TestCoarsening:
    def test_one_level_halves_roughly(self):
        g = random_connected_graph(40, 100, seed=2)
        level = coarsen_once(g, RandomSource(2))
        assert level.graph.node_count <= g.node_count
        assert level.graph.node_count >= g.node_count // 2
        check_graph_invariants(level.graph)

    def test_node_weight_conserved_per_level(self):
        g = random_connected_graph(30, 70, seed=3)
        level = coarsen_once(g, RandomSource(3))
        assert level.graph.total_node_weight() == pytest.approx(g.total_node_weight())

    def test_coarsen_to_target(self):
        g = random_connected_graph(120, 300, seed=4)
        levels = coarsen_graph(g, target_nodes=20, seed=4)
        assert levels
        assert levels[-1].graph.node_count <= max(20, 2 * 20)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            coarsen_graph(path_graph(4), target_nodes=0)

    def test_as_compression_expand_roundtrip(self):
        g = random_connected_graph(60, 150, seed=5)
        compressed = coarsening_as_compression(g, target_nodes=10, seed=5)
        covered: set = set()
        for cluster in compressed.clusters:
            assert cluster
            assert not covered & cluster
            covered |= cluster
        assert covered == set(g.nodes())
        assert compressed.graph.total_node_weight() == pytest.approx(
            g.total_node_weight()
        )

    def test_as_compression_cut_realizable(self):
        g = random_connected_graph(50, 120, seed=6)
        compressed = coarsening_as_compression(g, target_nodes=8, seed=6)
        supers = compressed.graph.node_list()
        chosen = set(supers[: len(supers) // 2])
        assert compressed.graph.cut_weight(chosen) == pytest.approx(
            g.cut_weight(compressed.expand(chosen))
        )

    def test_small_graph_passthrough(self):
        g = path_graph(3)
        compressed = coarsening_as_compression(g, target_nodes=10)
        assert compressed.graph.node_count == 3


class TestMultilevelKL:
    def test_partitions_cover_graph(self):
        g = random_connected_graph(60, 140, seed=7)
        result = multilevel_kl_bisect(g, target_nodes=12, seed=7)
        assert result.part_one | result.part_two == set(g.nodes())
        assert not result.part_one & result.part_two
        assert result.cut_value == pytest.approx(g.cut_weight(result.part_one))

    def test_finds_cluster_bridge(self):
        g = two_cluster_graph(10, intra_weight=10.0, bridge_weight=1.0)
        result = multilevel_kl_bisect(g, target_nodes=4, seed=8)
        assert result.cut_value == pytest.approx(1.0)

    def test_competitive_with_flat_kl(self):
        """On clustered graphs the multilevel approach must match or beat
        flat KL (that's its whole point)."""
        wins = 0
        for seed in range(5):
            g = two_cluster_graph(8, intra_weight=10.0, bridge_weight=1.0)
            # Perturb with random extra edges to roughen the landscape.
            extra = random_connected_graph(16, 20, seed=seed)
            for u, v, w in extra.edges():
                if not g.has_edge(u, v):
                    g.add_edge(u, v, weight=0.5)
            flat = kernighan_lin_bisect(g, seed=seed)
            multi = multilevel_kl_bisect(g, target_nodes=4, seed=seed)
            if multi.cut_value <= flat.cut_value + 1e-9:
                wins += 1
        assert wins >= 3

    def test_single_node(self):
        g = WeightedGraph()
        g.add_node("x")
        result = multilevel_kl_bisect(g)
        assert result.part_one == {"x"}
        assert result.cut_value == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multilevel_kl_bisect(WeightedGraph())

    def test_levels_reported(self):
        g = random_connected_graph(100, 250, seed=9)
        result = multilevel_kl_bisect(g, target_nodes=10, seed=9)
        assert result.levels >= 2
