"""Tests for traversal orders and connected-component utilities."""

import pytest

from repro.graphs.components import (
    component_subgraphs,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.graphs.traversal import (
    bfs_order,
    bfs_tree,
    dfs_order,
    eccentricity,
    farthest_node,
    hop_distances,
)
from repro.graphs.weighted_graph import WeightedGraph


def two_component_graph() -> WeightedGraph:
    g = WeightedGraph()
    for n in range(6):
        g.add_node(n)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(3, 4)
    return g  # node 5 is isolated in no edge set; 3-4 pair; 0-1-2 chain


class TestTraversal:
    def test_bfs_order_on_path(self, chain):
        assert bfs_order(chain, 0) == [0, 1, 2, 3, 4, 5]
        assert bfs_order(chain, 3) == [3, 2, 4, 1, 5, 0]

    def test_dfs_order_on_star(self):
        star = star_graph(3)
        assert dfs_order(star, 0) == [0, 1, 2, 3]

    def test_dfs_goes_deep_first(self, chain):
        chain.add_node(99)
        chain.add_edge(0, 99)
        order = dfs_order(chain, 0)
        # DFS from 0 explores the long chain fully before the 99 branch.
        assert order.index(5) < order.index(99)

    def test_bfs_missing_start_raises(self, chain):
        with pytest.raises(KeyError):
            bfs_order(chain, 42)

    def test_bfs_tree_parents(self, chain):
        parents = bfs_tree(chain, 2)
        assert parents[2] is None
        assert parents[1] == 2
        assert parents[0] == 1
        assert parents[5] == 4

    def test_hop_distances(self, chain):
        distances = hop_distances(chain, 0)
        assert distances == {i: i for i in range(6)}

    def test_eccentricity_and_farthest(self, chain):
        assert eccentricity(chain, 0) == 5
        assert eccentricity(chain, 3) == 3
        assert farthest_node(chain, 0) == 5

    def test_traversal_covers_only_reachable(self):
        g = two_component_graph()
        assert set(bfs_order(g, 0)) == {0, 1, 2}
        assert set(dfs_order(g, 3)) == {3, 4}


class TestComponents:
    def test_connected_components(self):
        g = two_component_graph()
        components = connected_components(g)
        assert [sorted(c) for c in components] == [[0, 1, 2], [3, 4], [5]]

    def test_component_subgraphs_preserve_edges(self):
        g = two_component_graph()
        subs = component_subgraphs(g)
        assert [s.node_count for s in subs] == [3, 2, 1]
        assert subs[0].has_edge(0, 1)
        assert subs[1].has_edge(3, 4)

    def test_is_connected(self, chain):
        assert is_connected(chain)
        assert not is_connected(two_component_graph())
        assert is_connected(WeightedGraph())  # empty graph is connected

    def test_largest_component(self):
        assert largest_component(two_component_graph()) == {0, 1, 2}
        assert largest_component(WeightedGraph()) == set()

    def test_grid_is_connected(self):
        assert is_connected(grid_graph(3, 4))

    def test_single_node_component(self):
        g = WeightedGraph()
        g.add_node("only")
        assert connected_components(g) == [{"only"}]
        assert is_connected(g)


class TestGenerators:
    def test_path_graph_shape(self):
        p = path_graph(5, node_weight=2.0, edge_weight=3.0)
        assert p.node_count == 5
        assert p.edge_count == 4
        assert p.node_weight(2) == 2.0
        assert p.edge_weight(1, 2) == 3.0

    def test_grid_graph_shape(self):
        g = grid_graph(3, 4)
        assert g.node_count == 12
        assert g.edge_count == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            grid_graph(0, 3)
