"""Tests for sensitivity sweeps, the markdown report, weighted paths,
scheme validation and simulation-report export."""

import pytest

from repro.experiments.report import generate_markdown_report
from repro.experiments.sensitivity import (
    SWEEPABLE,
    find_crossover,
    run_sensitivity_experiment,
)
from repro.graphs.generators import path_graph, random_connected_graph, two_cluster_graph
from repro.graphs.paths import (
    dijkstra_distances,
    inverse_weight_length,
    shortest_path,
    unit_length,
    weighted_farthest_node,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.validation import validate_scheme
from repro.mec.scheme import OffloadingScheme
from repro.workloads.profiles import ExperimentProfile

TINY = ExperimentProfile(
    name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
)


class TestSensitivity:
    def test_transmit_power_crossover(self):
        rows = run_sensitivity_experiment(
            "power_transmit",
            profile=TINY,
            graph_size=150,
            multipliers=(0.25, 1.0, 8.0, 32.0),
        )
        assert rows[0].offloaded_fraction >= rows[-1].offloaded_fraction
        assert rows[0].offloaded_fraction > 0.0  # cheap radio: shipping pays
        # At an absurd radio cost nothing ships.
        assert rows[-1].offloaded_fraction == 0.0
        assert find_crossover(rows) in (1.0, 8.0, 32.0)

    def test_bandwidth_improves_offloading(self):
        rows = run_sensitivity_experiment(
            "bandwidth", profile=TINY, graph_size=150, multipliers=(0.1, 1.0, 10.0)
        )
        assert rows[-1].offloaded_fraction >= rows[0].offloaded_fraction

    def test_all_parameters_runnable(self):
        for parameter in SWEEPABLE:
            rows = run_sensitivity_experiment(
                parameter, profile=TINY, multipliers=(1.0,)
            )
            assert len(rows) == 1
            assert rows[0].parameter == parameter

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            run_sensitivity_experiment("warp_power", profile=TINY)

    def test_nonpositive_multiplier_rejected(self):
        with pytest.raises(ValueError):
            run_sensitivity_experiment(
                "bandwidth", profile=TINY, multipliers=(0.0,)
            )

    def test_no_crossover_reported_as_none(self):
        rows = run_sensitivity_experiment(
            "bandwidth", profile=TINY, multipliers=(1.0, 2.0)
        )
        if all(r.offloaded_fraction > 0 for r in rows):
            assert find_crossover(rows) is None


class TestReport:
    def test_markdown_structure(self):
        document = generate_markdown_report(
            TINY, include_timing=False, single_user_repetitions=1, multiuser_repetitions=1
        )
        assert document.startswith("# COPMECS reproduction report")
        assert "## Table I" in document
        assert "## Figures 3-5" in document
        assert "## Figures 6-8" in document
        assert "## Figure 9" not in document  # timing skipped
        # Markdown tables render with pipes.
        assert document.count("|---") >= 3

    def test_timing_included_when_asked(self):
        document = generate_markdown_report(
            TINY, include_timing=True, single_user_repetitions=1, multiuser_repetitions=1
        )
        assert "## Figure 9" in document
        assert "spectral-spark" in document


class TestWeightedPaths:
    def test_dijkstra_unit_metric_equals_hops(self):
        g = path_graph(5, edge_weight=3.0)
        distances = dijkstra_distances(g, 0, edge_length=unit_length)
        assert distances == {i: float(i) for i in range(5)}

    def test_inverse_weight_prefers_heavy_edges(self):
        # a -1000- b -1000- c  vs  a -1- c: through b is "closer".
        g = WeightedGraph()
        for n in "abc":
            g.add_node(n)
        g.add_edge("a", "b", weight=1000.0)
        g.add_edge("b", "c", weight=1000.0)
        g.add_edge("a", "c", weight=1.0)
        distances = dijkstra_distances(g, "a")
        assert distances["c"] == pytest.approx(2 / 1000.0)
        assert shortest_path(g, "a", "c") == ["a", "b", "c"]

    def test_weighted_farthest_is_loosest_coupling(self):
        g = two_cluster_graph(3, intra_weight=100.0, bridge_weight=0.1)
        # From inside the left cluster, the far side of the weak bridge
        # is the weighted-farthest region.
        farthest = weighted_farthest_node(g, 0)
        assert farthest >= 3

    def test_unreachable_target(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError, match="unreachable"):
            shortest_path(g, "a", "b")

    def test_missing_nodes_rejected(self):
        g = path_graph(3)
        with pytest.raises(KeyError):
            dijkstra_distances(g, 99)
        with pytest.raises(KeyError):
            shortest_path(g, 0, 99)

    def test_matches_networkx_dijkstra(self):
        networkx = pytest.importorskip("networkx")
        g = random_connected_graph(12, 24, seed=3)
        nxg = networkx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, length=1.0 / w)
        expected = networkx.single_source_dijkstra_path_length(nxg, 0, weight="length")
        ours = dijkstra_distances(g, 0)
        for node, distance in expected.items():
            assert ours[node] == pytest.approx(distance)

    def test_weighted_st_selection_mode(self):
        from repro.mincut.st_selection import select_source_sink

        g = two_cluster_graph(4, intra_weight=50.0, bridge_weight=0.5)
        source_h, sink_h = select_source_sink(g, metric="hops")
        source_w, sink_w = select_source_sink(g, metric="weighted")
        assert source_h == source_w  # source rule is shared
        # Weighted metric must send the sink across the weak bridge.
        same_side = (source_w < 4) == (sink_w < 4)
        assert not same_side
        with pytest.raises(ValueError, match="unknown metric"):
            select_source_sink(g, metric="psychic")


class TestSchemeValidation:
    def test_valid_scheme_passes(self, small_call_graph, single_user_system):
        system, graphs = single_user_system
        scheme = OffloadingScheme(remote_functions={"u1": {"f4", "f5"}})
        result = validate_scheme(system, graphs, scheme)
        assert result.ok
        result.raise_if_invalid()  # no-op

    def test_pinned_function_flagged(self, single_user_system):
        system, graphs = single_user_system
        scheme = OffloadingScheme(remote_functions={"u1": {"f1"}})
        result = validate_scheme(system, graphs, scheme)
        assert not result.ok
        assert any("pinned" in v for v in result.violations)
        with pytest.raises(ValueError, match="pinned"):
            result.raise_if_invalid()

    def test_unknown_function_and_user_flagged(self, single_user_system):
        system, graphs = single_user_system
        scheme = OffloadingScheme(
            remote_functions={"u1": {"ghost"}, "nobody": {"f2"}}
        )
        result = validate_scheme(system, graphs, scheme)
        assert any("unknown function" in v for v in result.violations)
        assert any("unknown user" in v for v in result.violations)

    def test_missing_call_graph_flagged(self, single_user_system):
        system, _ = single_user_system
        result = validate_scheme(system, {}, OffloadingScheme())
        assert any("no call graph" in v for v in result.violations)

    def test_planner_output_always_validates(self):
        from repro.core import make_planner
        from repro.mec.devices import EdgeServer, MobileDevice
        from repro.mec.system import MECSystem, UserContext
        from repro.workloads.applications import synthesize_application

        app = synthesize_application("v", n_functions=40, seed=17)
        system = MECSystem(
            EdgeServer(300.0), [UserContext(MobileDevice("u1"), app)]
        )
        for strategy in ("spectral", "maxflow", "kl", "multilevel-kl"):
            result = make_planner(strategy).plan_system(system, {"u1": app})
            assert validate_scheme(system, {"u1": app}, result.scheme).ok


class TestSimulationExport:
    def test_to_dict_roundtrips_through_json(self, single_user_system):
        import json

        from repro.core import make_planner
        from repro.mec.scheme import PartitionedApplication
        from repro.simulation import simulate_scheme

        system, graphs = single_user_system
        result = make_planner("spectral").plan_system(system, graphs)
        apps = {
            "u1": PartitionedApplication("u1", graphs["u1"], result.user_plans["u1"].parts)
        }
        report = simulate_scheme(system, apps, result.greedy.remote_parts)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["events_processed"] == report.events_processed
        assert payload["per_user"]["u1"]["completion"] == pytest.approx(
            report.timeline("u1").completion
        )
        assert "sojourn" in payload["per_user"]["u1"]
