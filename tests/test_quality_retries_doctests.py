"""Tests for compression quality metrics, cluster task retries, and the
library's runnable docstring examples."""

import doctest

import pytest

from repro.compression import GraphCompressor
from repro.compression.quality import (
    compression_quality,
    internalized_traffic_fraction,
    weighted_modularity,
)
from repro.distributed.cluster import LocalCluster
from repro.graphs.generators import path_graph, two_cluster_graph
from repro.graphs.weighted_graph import WeightedGraph
from repro.workloads.netgen import NetgenConfig, netgen_graph


class TestCompressionQuality:
    def test_perfect_clustering_internalises_almost_everything(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=1.0)
        clusters = [set(range(5)), set(range(5, 10))]
        fraction = internalized_traffic_fraction(g, clusters)
        bridge = 1.0
        total = g.total_edge_weight()
        assert fraction == pytest.approx((total - bridge) / total)

    def test_singleton_clustering_internalises_nothing(self):
        g = path_graph(6)
        clusters = [{n} for n in g.nodes()]
        assert internalized_traffic_fraction(g, clusters) == 0.0

    def test_overlapping_clusters_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="two clusters"):
            internalized_traffic_fraction(g, [{0, 1}, {1, 2}])

    def test_modularity_signs(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=1.0)
        good = weighted_modularity(g, [set(range(5)), set(range(5, 10))])
        trivial = weighted_modularity(g, [set(g.nodes())])
        assert good > 0.3
        assert trivial == pytest.approx(0.0, abs=1e-9)
        assert good > trivial

    def test_edgeless_graph_scores_zero(self):
        g = WeightedGraph()
        g.add_node("a")
        assert weighted_modularity(g, [{"a"}]) == 0.0
        assert internalized_traffic_fraction(g, [{"a"}]) == 0.0

    def test_lpa_compression_quality_on_netgen(self):
        """Algorithm 1 must internalise the heavy intra-cluster traffic
        on NETGEN-style clustered workloads."""
        g = netgen_graph(NetgenConfig(n_nodes=200, n_edges=900, seed=3))
        compressed = GraphCompressor().compress(g).compressed
        quality = compression_quality(g, compressed)
        assert quality["internalized_traffic"] > 0.6
        assert quality["modularity"] > 0.2
        assert quality["node_reduction"] > 0.5


class TestClusterRetries:
    @staticmethod
    def flaky(failures_left: list[int]):
        def task():
            if failures_left[0] > 0:
                failures_left[0] -= 1
                raise RuntimeError("transient worker failure")
            return "ok"

        return task

    def test_retry_recovers_transient_failure(self):
        cluster = LocalCluster(workers=1, max_task_retries=3)
        results = cluster.run_stage([self.flaky([2])])
        assert results == ["ok"]
        assert cluster.stats.retries == 2

    def test_budget_exhaustion_propagates(self):
        cluster = LocalCluster(workers=1, max_task_retries=1)
        with pytest.raises(RuntimeError, match="transient"):
            cluster.run_stage([self.flaky([5])])
        assert cluster.stats.retries == 1

    def test_zero_retries_fail_fast(self):
        cluster = LocalCluster(workers=1, max_task_retries=0)
        with pytest.raises(RuntimeError):
            cluster.run_stage([self.flaky([1])])
        assert cluster.stats.retries == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            LocalCluster(workers=1, max_task_retries=-1)

    def test_rdd_pipeline_survives_flaky_tasks(self):
        """Retries compose with the RDD layer (tasks must be pure)."""
        cluster = LocalCluster(workers=2, max_task_retries=2)
        fail_once = {"budget": 2}

        def sometimes_flaky(x: int) -> int:
            if fail_once["budget"] > 0 and x == 0:
                fail_once["budget"] -= 1
                raise OSError("worker lost")
            return x * 2

        result = cluster.parallelize(range(10), partitions=5).map(
            sometimes_flaky
        ).collect()
        assert result == [x * 2 for x in range(10)]
        assert cluster.stats.retries >= 1


class TestDoctests:
    """The examples in key docstrings must actually run."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.utils.rng",
            "repro.utils.timer",
            "repro.graphs.weighted_graph",
            "repro.distributed.cluster",
            "repro.simulation.events",
            "repro.compression.compressor",
            "repro.spectral.fiedler",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, attempted = doctest.testmod(
            module, verbose=False, raise_on_error=False
        ).failed, doctest.testmod(module, verbose=False).attempted
        assert attempted > 0, f"{module_name} advertises no runnable examples"
        assert failures == 0
