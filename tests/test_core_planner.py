"""Tests for the planner pipeline and the baseline strategies."""

import pytest

from repro.compression.compressor import CompressionConfig
from repro.compression.labels import AbsoluteThreshold
from repro.core.baselines import (
    kl_cut_strategy,
    make_planner,
    maxflow_cut_strategy,
    spectral_cut_strategy,
)
from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.distributed.cluster import LocalCluster
from repro.graphs.generators import two_cluster_graph
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import (
    call_graph_from_weighted_graph,
    synthesize_application,
)
from repro.workloads.netgen import NetgenConfig, netgen_graph

ALL_STRATEGIES = ("spectral", "maxflow", "kl")


class TestCutStrategies:
    @pytest.mark.parametrize(
        "strategy",
        [spectral_cut_strategy(), maxflow_cut_strategy(), kl_cut_strategy()],
        ids=["spectral", "maxflow", "kl"],
    )
    def test_strategies_bisect(self, strategy):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.0)
        outcome = strategy(g)
        assert outcome.part_one | outcome.part_two == set(g.nodes())
        assert not outcome.part_one & outcome.part_two
        assert outcome.cut_value == pytest.approx(g.cut_weight(outcome.part_one))

    def test_spectral_and_kl_find_bridge(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.0)
        for strategy in (spectral_cut_strategy(), kl_cut_strategy()):
            assert strategy(g).cut_value == pytest.approx(1.0)

    def test_make_planner_names(self):
        for name in ALL_STRATEGIES:
            assert make_planner(name).strategy_name == name

    def test_make_planner_unknown(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_planner("quantum")

    def test_spark_planner_needs_cluster(self):
        with pytest.raises(ValueError, match="cluster"):
            make_planner("spectral-spark")
        with LocalCluster(workers=1) as cluster:
            planner = make_planner("spectral-spark", cluster=cluster)
            assert planner.strategy_name == "spectral-spark"


class TestPlanUser:
    def test_plan_structure(self):
        app = synthesize_application("demo", n_functions=40, seed=1)
        plan = make_planner("spectral").plan_user(app)
        assert plan.original_nodes == len(app.offloadable_functions())
        assert plan.compressed_nodes <= plan.original_nodes
        # Parts cover exactly the offloadable functions.
        covered = set().union(*plan.parts) if plan.parts else set()
        assert covered == set(app.offloadable_functions())

    def test_parts_disjoint(self):
        app = synthesize_application("demo", n_functions=60, seed=2)
        plan = make_planner("spectral").plan_user(app)
        seen: set[str] = set()
        for part in plan.parts:
            assert not seen & part
            seen |= part

    def test_bisections_reference_valid_parts(self):
        app = synthesize_application("demo", n_functions=50, seed=3)
        plan = make_planner("maxflow").plan_user(app)
        for side_one, side_two in plan.bisections:
            for index in side_one | side_two:
                assert 0 <= index < len(plan.parts)

    def test_compression_ratio_reported(self):
        g = netgen_graph(NetgenConfig(n_nodes=120, n_edges=520, seed=4))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=4)
        plan = make_planner("spectral").plan_user(app)
        assert plan.compression_ratio > 2.0  # netgen graphs compress well
        assert plan.propagation_rounds >= 1

    def test_skip_compression_ablation(self):
        g = netgen_graph(NetgenConfig(n_nodes=60, n_edges=250, seed=5))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=5)
        config = PlannerConfig(skip_compression=True)
        plan = OffloadingPlanner(
            spectral_cut_strategy(), config=config, strategy_name="raw"
        ).plan_user(app)
        assert plan.compressed_nodes == plan.original_nodes
        assert plan.compression_ratio == pytest.approx(1.0)

    def test_all_unoffloadable_app(self):
        from repro.callgraph.model import FunctionCallGraph

        fcg = FunctionCallGraph("pinned")
        fcg.add_function("a", 5.0, offloadable=False)
        fcg.add_function("b", 5.0, offloadable=False)
        fcg.add_data_flow("a", "b", 2.0)
        plan = make_planner("spectral").plan_user(fcg)
        assert plan.parts == []
        assert plan.bisections == []

    def test_refine_cuts_never_worse(self):
        g = netgen_graph(NetgenConfig(n_nodes=100, n_edges=430, seed=6))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=6)
        base = OffloadingPlanner(kl_cut_strategy(), strategy_name="kl").plan_user(app)
        refined = OffloadingPlanner(
            kl_cut_strategy(),
            config=PlannerConfig(refine_cuts=True),
            strategy_name="kl+fm",
        ).plan_user(app)
        assert refined.total_cut_value <= base.total_cut_value + 1e-9


class TestPlanSystem:
    def make_system(self, app, n_users: int = 1):
        users = [
            UserContext(MobileDevice(f"u{k}"), app) for k in range(n_users)
        ]
        system = MECSystem(EdgeServer(total_capacity=300.0 * n_users), users)
        return system, {f"u{k}": app for k in range(n_users)}

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_scheme_is_feasible(self, strategy):
        app = synthesize_application("demo", n_functions=50, seed=7)
        system, graphs = self.make_system(app)
        result = make_planner(strategy).plan_system(system, graphs)
        pinned = set(app.unoffloadable_functions())
        for user_id in graphs:
            assert not result.scheme.remote_for(user_id) & pinned

    def test_identical_apps_planned_once(self):
        app = synthesize_application("demo", n_functions=40, seed=8)
        system, graphs = self.make_system(app, n_users=5)
        result = make_planner("spectral").plan_system(system, graphs)
        plans = list(result.user_plans.values())
        assert all(p is plans[0] for p in plans)

    def test_missing_call_graph_rejected(self):
        app = synthesize_application("demo", n_functions=20, seed=9)
        system, _ = self.make_system(app)
        with pytest.raises(KeyError, match="no call graph"):
            make_planner("spectral").plan_system(system, {})

    def test_consumption_matches_reevaluation(self):
        app = synthesize_application("demo", n_functions=45, seed=10)
        system, graphs = self.make_system(app, n_users=2)
        result = make_planner("spectral").plan_system(system, graphs)
        # The reported totals must be non-negative and self-consistent.
        c = result.consumption
        assert c.energy == pytest.approx(c.local_energy + c.transmission_energy)
        assert c.time >= 0.0
        assert result.planning_seconds > 0.0

    def test_summary_mentions_strategy(self):
        app = synthesize_application("demo", n_functions=30, seed=11)
        system, graphs = self.make_system(app)
        result = make_planner("kl").plan_system(system, graphs)
        assert "[kl]" in result.summary()

    def test_custom_compression_config_used(self):
        app = synthesize_application("demo", n_functions=40, seed=12)
        aggressive = PlannerConfig(
            compression=CompressionConfig(threshold_rule=AbsoluteThreshold(0.0))
        )
        plan = OffloadingPlanner(
            spectral_cut_strategy(), config=aggressive, strategy_name="s"
        ).plan_user(app)
        # Threshold 0 merges each connected component into one super node.
        assert plan.compressed_nodes <= len(app.components()) + 1
