"""Tests for the extension features: queueing admission, call-graph text
format, RDD additions."""

import pytest

from repro.callgraph.textformat import (
    format_call_graph_text,
    load_call_graph_text,
    parse_call_graph_text,
    save_call_graph_text,
)
from repro.distributed.cluster import LocalCluster
from repro.mec.admission import QueueTheoreticAllocation
from repro.mec.devices import EdgeServer


class TestQueueTheoreticAllocation:
    server = EdgeServer(total_capacity=100.0)

    def test_light_load_little_waiting(self):
        policy = QueueTheoreticAllocation(horizon=10.0)
        allocation = policy.allocate(self.server, {"a": 10.0})
        # rho = 10 / 1000 = 0.01 -> waiting ~ 0.0101 * 0.1
        assert allocation.waiting_for("a") < 0.01
        assert allocation.capacity_for("a") == 100.0

    def test_waiting_grows_nonlinearly_with_load(self):
        policy = QueueTheoreticAllocation(horizon=1.0)
        light = policy.allocate(self.server, {"a": 20.0}).waiting_for("a")
        heavy = policy.allocate(self.server, {"a": 80.0}).waiting_for("a")
        # 4x the load must cost much more than 4x the waiting (convexity).
        assert heavy > 8.0 * light

    def test_saturation_clamped(self):
        policy = QueueTheoreticAllocation(horizon=1.0, max_utilisation=0.9)
        overload = policy.allocate(self.server, {"a": 500.0})
        assert overload.waiting_for("a") < float("inf")

    def test_idle_users_excluded(self):
        policy = QueueTheoreticAllocation()
        allocation = policy.allocate(self.server, {"a": 0.0, "b": 10.0})
        assert allocation.capacity_for("a") == 0.0
        assert allocation.waiting_for("b") > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueueTheoreticAllocation(horizon=0.0)
        with pytest.raises(ValueError):
            QueueTheoreticAllocation(max_utilisation=1.0)

    def test_usable_by_planner(self, small_call_graph, device_profile):
        from repro.core import make_planner
        from repro.mec.devices import MobileDevice
        from repro.mec.system import MECSystem, UserContext

        device = MobileDevice("u1", profile=device_profile)
        system = MECSystem(
            EdgeServer(200.0),
            [UserContext(device, small_call_graph)],
            allocation=QueueTheoreticAllocation(horizon=5.0),
        )
        result = make_planner("spectral").plan_system(system, {"u1": small_call_graph})
        assert result.consumption.energy > 0.0


EXAMPLE_TEXT = """
# demo application
app photo-assistant
func main ui 5.0 pinned
func decode media 120.0
func upload net 2.5
flow main decode 10.0
flow decode upload 3.0
flow main decode 2.0
"""


class TestTextFormat:
    def test_parse_basic(self):
        fcg = parse_call_graph_text(EXAMPLE_TEXT.splitlines())
        assert fcg.app_name == "photo-assistant"
        assert fcg.function_count == 3
        assert not fcg.info("main").offloadable
        assert fcg.info("decode").computation == 120.0
        # Repeated flows accumulate.
        assert fcg.graph.edge_weight("main", "decode") == 12.0

    def test_roundtrip(self):
        original = parse_call_graph_text(EXAMPLE_TEXT.splitlines())
        text = format_call_graph_text(original)
        rebuilt = parse_call_graph_text(text.splitlines())
        assert rebuilt.app_name == original.app_name
        assert set(rebuilt.functions()) == set(original.functions())
        assert rebuilt.graph.edge_weight("decode", "upload") == pytest.approx(3.0)
        assert rebuilt.info("main").offloadable == original.info("main").offloadable

    def test_file_roundtrip(self, tmp_path):
        fcg = parse_call_graph_text(EXAMPLE_TEXT.splitlines())
        path = tmp_path / "app.cg"
        save_call_graph_text(fcg, path)
        loaded = load_call_graph_text(path)
        assert loaded.function_count == 3

    @pytest.mark.parametrize(
        "bad,message",
        [
            ("func onlyname", "expected 'func"),
            ("func a ui notanumber", "bad computation"),
            ("func a ui 1.0 sticky", "unknown flag"),
            ("flow a b", "expected 'flow"),
            ("warp a b 1.0", "unknown keyword"),
        ],
    )
    def test_malformed_lines_rejected(self, bad, message):
        with pytest.raises(ValueError, match=message):
            parse_call_graph_text(["func ok ui 1.0", bad])

    def test_duplicate_function_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_call_graph_text(["func a ui 1.0", "func a ui 2.0"])

    def test_undeclared_flow_endpoint_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            parse_call_graph_text(["func a ui 1.0", "flow a ghost 2.0"])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no functions"):
            parse_call_graph_text(["# nothing here"])

    def test_parsed_graph_plans_end_to_end(self):
        from repro.core import PlannerConfig, make_planner
        from repro.mec.devices import DeviceProfile, MobileDevice
        from repro.mec.system import MECSystem, UserContext

        fcg = parse_call_graph_text(EXAMPLE_TEXT.splitlines())
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=10.0, power_compute=1.0, power_transmit=4.0, bandwidth=100.0
            ),
        )
        system = MECSystem(EdgeServer(500.0), [UserContext(device, fcg)])
        # 'decode' touches the pinned 'main', so the paper-default
        # anchored seeding keeps it on the device; the 'dominated' mode
        # lets its computation weight argue for shipping it.
        config = PlannerConfig(initial_placement_mode="dominated")
        result = make_planner("spectral", config=config).plan_system(
            system, {"u1": fcg}
        )
        assert "decode" in result.scheme.remote_for("u1")  # heavy, cheap to ship


class TestRDDAdditions:
    def test_map_partitions(self):
        cluster = LocalCluster(workers=2)
        rdd = cluster.parallelize(range(10), partitions=2)
        sums = rdd.map_partitions(lambda part: [sum(part)]).collect()
        assert sums == [sum(range(5)), sum(range(5, 10))]

    def test_glom(self):
        cluster = LocalCluster(workers=2)
        parts = cluster.parallelize(range(6), partitions=3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_take_stops_early(self):
        cluster = LocalCluster(workers=1)
        seen: list[int] = []

        def record(x):
            seen.append(x)
            return x

        rdd = cluster.parallelize(range(100), partitions=10).map(record)
        assert rdd.take(5) == [0, 1, 2, 3, 4]
        # Only the first partition ran.
        assert len(seen) == 10

    def test_take_more_than_available(self):
        cluster = LocalCluster(workers=1)
        assert cluster.parallelize([1, 2], partitions=1).take(10) == [1, 2]

    def test_take_negative_rejected(self):
        cluster = LocalCluster(workers=1)
        with pytest.raises(ValueError):
            cluster.parallelize([1], partitions=1).take(-1)

    def test_reduce_by_key(self):
        cluster = LocalCluster(workers=2)
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        rdd = cluster.parallelize(pairs, partitions=3)
        assert rdd.reduce_by_key(lambda x, y: x + y) == {"a": 4, "b": 6, "c": 5}

    def test_map_partitions_composes_with_map(self):
        cluster = LocalCluster(workers=2)
        result = (
            cluster.parallelize(range(8), partitions=2)
            .map(lambda x: x + 1)
            .map_partitions(lambda part: [max(part)])
            .collect()
        )
        assert result == [4, 8]
