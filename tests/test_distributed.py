"""Tests for the mini-Spark substrate: executors, cluster, RDD, matrices."""

import numpy as np
import pytest

from repro.distributed.cluster import LocalCluster
from repro.distributed.executor import SerialExecutor, ThreadedExecutor
from repro.distributed.matrix import BlockMatrix
from repro.distributed.spark_spectral import DistributedFiedlerSolver
from repro.graphs.generators import path_graph, random_connected_graph, two_cluster_graph
from repro.graphs.laplacian import laplacian_matrix
from repro.spectral.fiedler import FiedlerSolver


class TestExecutors:
    def test_serial_runs_in_order(self):
        log: list[int] = []
        tasks = [lambda i=i: log.append(i) or i for i in range(5)]
        results = SerialExecutor().run_all(tasks)
        assert results == [0, 1, 2, 3, 4]
        assert log == [0, 1, 2, 3, 4]

    def test_threaded_preserves_result_order(self):
        with ThreadedExecutor(workers=4) as executor:
            results = executor.map(lambda x: x * x, range(20))
        assert results == [x * x for x in range(20)]

    def test_threaded_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError("task failed")

        with ThreadedExecutor(workers=2) as executor:
            with pytest.raises(RuntimeError, match="task failed"):
                executor.map(boom, [1])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(workers=0)

    def test_close_idempotent(self):
        executor = ThreadedExecutor(workers=2)
        executor.map(lambda x: x, [1, 2])
        executor.close()
        executor.close()


class TestCluster:
    def test_stats_count_stages_and_tasks(self):
        cluster = LocalCluster(workers=2)
        cluster.run_stage([lambda: 1, lambda: 2, lambda: 3])
        cluster.run_stage([lambda: 4])
        assert cluster.stats.stages == 2
        assert cluster.stats.tasks == 4

    def test_single_worker_uses_serial(self):
        cluster = LocalCluster(workers=1)
        assert cluster.run_stage([lambda: "ok"]) == ["ok"]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            LocalCluster(workers=0)

    def test_context_manager(self):
        with LocalCluster(workers=2) as cluster:
            assert cluster.run_stage([lambda: 5]) == [5]


class TestRDD:
    def test_parallelize_collect_roundtrip(self):
        cluster = LocalCluster(workers=2)
        data = list(range(17))
        assert cluster.parallelize(data, partitions=4).collect() == data

    def test_partition_sizes_near_equal(self):
        cluster = LocalCluster(workers=2)
        rdd = cluster.parallelize(range(10), partitions=3)
        assert rdd.partition_count == 3

    def test_map_filter_chain(self):
        cluster = LocalCluster(workers=2)
        result = (
            cluster.parallelize(range(10), partitions=3)
            .map(lambda x: x * 2)
            .filter(lambda x: x % 4 == 0)
            .collect()
        )
        assert result == [0, 4, 8, 12, 16]

    def test_flat_map(self):
        cluster = LocalCluster(workers=2)
        result = cluster.parallelize([1, 2, 3], partitions=2).flat_map(
            lambda x: [x] * x
        ).collect()
        assert result == [1, 2, 2, 3, 3, 3]

    def test_reduce_and_sum(self):
        cluster = LocalCluster(workers=2)
        rdd = cluster.parallelize(range(1, 101), partitions=5)
        assert rdd.reduce(lambda a, b: a + b) == 5050
        assert cluster.parallelize(range(1, 11), partitions=3).sum() == 55

    def test_reduce_empty_rejected(self):
        cluster = LocalCluster(workers=1)
        with pytest.raises(ValueError):
            cluster.parallelize([], partitions=1).reduce(lambda a, b: a + b)

    def test_count(self):
        cluster = LocalCluster(workers=2)
        assert cluster.parallelize(range(42), partitions=4).count() == 42

    def test_laziness(self):
        cluster = LocalCluster(workers=1)
        calls: list[int] = []

        def record(x):
            calls.append(x)
            return x

        rdd = cluster.parallelize([1, 2, 3], partitions=1).map(record)
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [1, 2, 3]


class TestBlockMatrix:
    def test_matvec_matches_numpy(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((13, 13))
        vector = rng.standard_normal(13)
        with LocalCluster(workers=2) as cluster:
            blocks = BlockMatrix.from_dense(cluster, matrix, block_rows=4)
            assert blocks.block_count == 4
            assert np.allclose(blocks.matvec(vector), matrix @ vector)

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((9, 6))
        b = rng.standard_normal((6, 4))
        with LocalCluster(workers=2) as cluster:
            blocks = BlockMatrix.from_dense(cluster, a, block_rows=2)
            assert np.allclose(blocks.matmul(b), a @ b)

    def test_shape_and_dense_roundtrip(self):
        matrix = np.arange(12.0).reshape(4, 3)
        with LocalCluster(workers=1) as cluster:
            blocks = BlockMatrix.from_dense(cluster, matrix, block_rows=3)
            assert blocks.shape == (4, 3)
            assert np.allclose(blocks.to_dense(), matrix)

    def test_dimension_checks(self):
        with LocalCluster(workers=1) as cluster:
            blocks = BlockMatrix.from_dense(cluster, np.eye(3))
            with pytest.raises(ValueError):
                blocks.matvec(np.zeros(5))
            with pytest.raises(ValueError):
                blocks.matmul(np.zeros((5, 2)))
            with pytest.raises(ValueError):
                BlockMatrix.from_dense(cluster, np.zeros(3))  # 1-D

    def test_tasks_actually_distributed(self):
        with LocalCluster(workers=2) as cluster:
            blocks = BlockMatrix.from_dense(cluster, np.eye(8), block_rows=2)
            blocks.matvec(np.ones(8))
            assert cluster.stats.tasks == 4


class TestDistributedFiedler:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_dense_solver(self, seed):
        g = random_connected_graph(16, 30, seed=seed)
        expected = FiedlerSolver(method="dense").solve(g)
        with LocalCluster(workers=2) as cluster:
            result = DistributedFiedlerSolver(cluster).solve(g)
        assert result.value == pytest.approx(expected.value, rel=1e-6, abs=1e-8)
        assert result.method == "distributed-lanczos"

    def test_sign_pattern_separates_clusters(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=0.5)
        with LocalCluster(workers=2) as cluster:
            result = DistributedFiedlerSolver(cluster).solve(g)
        signs_left = {result.entry(n) >= 0 for n in range(5)}
        signs_right = {result.entry(n) >= 0 for n in range(5, 10)}
        assert signs_left != signs_right

    def test_single_node(self):
        g = path_graph(1)
        with LocalCluster(workers=1) as cluster:
            result = DistributedFiedlerSolver(cluster).solve(g)
        assert result.value == 0.0

    def test_cluster_work_recorded(self):
        g = random_connected_graph(20, 40, seed=5)
        with LocalCluster(workers=2) as cluster:
            DistributedFiedlerSolver(cluster).solve(g)
            assert cluster.stats.stages > 0

    def test_verify_laplacian_eigen_residual(self):
        g = random_connected_graph(12, 24, seed=6)
        lap = laplacian_matrix(g)
        with LocalCluster(workers=2) as cluster:
            result = DistributedFiedlerSolver(cluster).solve(g)
        residual = lap @ result.vector - result.value * result.vector
        assert np.linalg.norm(residual) < 1e-6
