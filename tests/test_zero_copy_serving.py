"""Zero-copy transfer, batched submission, and the HTTP serving surface.

Covers the serving-layer perf work end to end:

* the shared-memory codec and :class:`SharedGraphStore` lifecycle
  (round-trip fidelity, LRU eviction, unlink-on-close, inline fallback);
* thread vs warm-process bit-parity through the zero-copy pipeline,
  including worker recycling (``maxtasksperchild``) and concurrent
  multi-thread submitters;
* :class:`PlanningBackend` semantics — batches racing ``close()`` still
  settle, single plans go through the pool, chunksizes are bounded;
* the HTTP frontend round-tripping real plans over a socket.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from multiprocessing import shared_memory

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.core import make_planner
from repro.service import (
    HttpFrontendThread,
    PlanService,
    PlanningBackend,
    SegmentLostError,
    ServiceConfig,
    SharedGraphStore,
    decode_call_graph,
    encode_call_graph,
    graph_fingerprint,
    graph_to_payload,
    parse_graph_payload,
    plan_digest,
)
from repro.service.executor import _MAX_CHUNKSIZE, _chunksize
from repro.service.shm import GraphRef, resolve_ref


def _random_call_graph(seed: int, app_name: str = "zc") -> FunctionCallGraph:
    """Random call graph with varied weights, components, and pins."""
    rng = random.Random(seed)
    n = rng.randint(5, 16)
    fcg = FunctionCallGraph(app_name)
    names = [f"f{i}" for i in range(n)]
    for name in names:
        fcg.add_function(
            name,
            computation=round(rng.uniform(1.0, 50.0), 3),
            component=rng.choice(["main", "aux"]),
            offloadable=rng.random() > 0.2,
        )
    for i in range(1, n):
        j = rng.randrange(i)
        fcg.add_data_flow(names[i], names[j], round(rng.uniform(0.5, 20.0), 3))
    for _ in range(rng.randint(0, n)):
        u, v = rng.sample(names, 2)
        if not fcg.graph.has_edge(u, v):
            fcg.add_data_flow(u, v, round(rng.uniform(0.5, 20.0), 3))
    return fcg


class TestSharedMemoryCodec:
    def test_round_trip_preserves_content_and_fingerprint(self):
        for seed in range(8):
            original = _random_call_graph(seed)
            rebuilt = decode_call_graph(encode_call_graph(original))
            assert rebuilt.app_name == original.app_name
            assert list(rebuilt.functions()) == list(original.functions())
            for name in original.functions():
                assert rebuilt.info(name) == original.info(name)
            assert list(rebuilt.graph.edges()) == list(original.graph.edges())
            assert graph_fingerprint(rebuilt) == graph_fingerprint(original)

    def test_decode_accepts_memoryview(self):
        original = _random_call_graph(3)
        blob = encode_call_graph(original)
        rebuilt = decode_call_graph(memoryview(blob))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(original)


class TestSharedGraphStore:
    def test_publish_reuses_segment_for_same_content(self):
        with SharedGraphStore(capacity=4) as store:
            first = store.publish(_random_call_graph(1))
            second = store.publish(_random_call_graph(1))
            assert first.segment == second.segment
            assert store.publishes == 1
            assert store.reuses == 1
            assert store.live_segments == 1

    def test_lru_eviction_unlinks_oldest_segment(self):
        with SharedGraphStore(capacity=2) as store:
            refs = [store.publish(_random_call_graph(seed)) for seed in range(3)]
            assert store.evictions == 1
            assert store.live_segments == 2
            # The evicted (oldest) segment is gone from /dev/shm ...
            with pytest.raises(SegmentLostError):
                resolve_ref(refs[0])
            # ... and the retry path ships the graph inline instead.
            inline = store.inline_ref(_random_call_graph(0))
            assert inline.payload is not None
            rebuilt = resolve_ref(inline)
            assert graph_fingerprint(rebuilt) == refs[0].key

    def test_close_unlinks_every_segment(self):
        store = SharedGraphStore(capacity=4)
        ref = store.publish(_random_call_graph(5))
        assert ref.segment is not None
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment).close()
        store.close()  # idempotent
        assert store.live_segments == 0

    def test_resolve_ref_round_trips_through_shared_memory(self):
        with SharedGraphStore(capacity=4) as store:
            original = _random_call_graph(7)
            rebuilt = resolve_ref(store.publish(original))
            assert graph_fingerprint(rebuilt) == graph_fingerprint(original)
            assert list(rebuilt.graph.edges()) == list(original.graph.edges())

    def test_ref_without_segment_or_payload_rejected(self):
        with pytest.raises(ValueError):
            resolve_ref(GraphRef(key="deadbeef", size=0))


class TestZeroCopyExecutorParity:
    def _digests(self, backend: PlanningBackend, graphs) -> list[str]:
        planner = make_planner("spectral")
        with backend:
            backend.start()
            return [plan_digest(plan) for plan in backend.plan_many(planner, graphs)]

    def test_process_plans_bit_identical_to_thread(self):
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(8)]
        thread = self._digests(PlanningBackend(executor="thread"), graphs)
        process = self._digests(PlanningBackend(executor="process", processes=2), graphs)
        assert thread == process

    def test_worker_recycling_preserves_parity(self):
        # maxtasksperchild=1 forks a fresh worker per task: the warm-start
        # priming and segment decode cache rebuild every time, and plans
        # must still be bit-identical.
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(6)]
        thread = self._digests(PlanningBackend(executor="thread"), graphs)
        recycled = self._digests(
            PlanningBackend(executor="process", processes=2, maxtasksperchild=1), graphs
        )
        assert thread == recycled

    def test_concurrent_submitters_all_get_identical_plans(self):
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(5)]
        planner = make_planner("spectral")
        expected = [plan_digest(planner.plan_user(graph)) for graph in graphs]
        results: dict[int, list[str]] = {}
        errors: list[Exception] = []
        with PlanningBackend(executor="process", processes=2) as backend:
            backend.start()

            def submit(worker_index: int) -> None:
                try:
                    plans = backend.plan_many(planner, graphs)
                    results[worker_index] = [plan_digest(plan) for plan in plans]
                except Exception as exc:  # surfaced below: the test thread
                    errors.append(exc)  # re-raises collected failures

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        assert all(digests == expected for digests in results.values())

    def test_singleton_plans_go_through_the_pool(self):
        graph = _random_call_graph(9)
        planner = make_planner("spectral")
        with PlanningBackend(executor="process", processes=2) as backend:
            backend.start()
            assert backend.store is not None
            plan = backend.plan(planner, graph)
            # The single-graph path published through the store (pool
            # pipeline), not an in-thread fallback.
            assert backend.store.publishes + backend.store.inline_fallbacks >= 1
        assert plan_digest(plan) == plan_digest(planner.plan_user(graph))

    def test_inflight_batch_survives_close(self):
        # close() must drain, not terminate: a batch submitted just
        # before close still settles with correct plans.
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(6)]
        planner = make_planner("spectral")
        expected = [plan_digest(planner.plan_user(graph)) for graph in graphs]
        backend = PlanningBackend(executor="process", processes=2)
        backend.start()
        outcome: dict[str, object] = {}

        def submit() -> None:
            try:
                outcome["digests"] = [
                    plan_digest(plan) for plan in backend.plan_many(planner, graphs)
                ]
            except Exception as exc:  # surfaced below via the outcome dict
                outcome["error"] = exc

        submitter = threading.Thread(target=submit)
        submitter.start()
        time.sleep(0.05)  # let the batch reach the pool
        backend.close()
        submitter.join(timeout=120)
        assert not submitter.is_alive()
        assert "error" not in outcome, outcome.get("error")
        assert outcome["digests"] == expected

    def test_chunksize_bounded_both_ways(self):
        assert _chunksize(0, 4) == 1
        assert _chunksize(1, 4) == 1
        assert _chunksize(16, 4) == 1
        assert _chunksize(64, 4) == 4
        assert _chunksize(10_000, 4) == _MAX_CHUNKSIZE
        assert _chunksize(8, 0) == 2  # worker floor of 1


class TestHttpFrontend:
    def _get(self, port: int, path: str) -> tuple[int, bytes]:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=30.0
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def _post(self, port: int, path: str, payload: object) -> tuple[int, dict]:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    def test_plan_round_trip_matches_direct_service_call(self):
        graph = _random_call_graph(21)
        config = ServiceConfig(workers=2)
        with PlanService(make_planner("spectral"), config) as service:
            direct = service.plan(graph)
            frontend = HttpFrontendThread(service)
            with frontend:
                port = frontend.start()
                status, body = self._post(port, "/plan", graph_to_payload(graph))
        assert status == 200
        assert body["ok"] is True
        assert body["key"] == direct.key
        assert body["plan_digest"] == plan_digest(direct.plan)

    def test_submit_then_poll_result(self):
        graph = _random_call_graph(22)
        with (
            PlanService(make_planner("spectral"), ServiceConfig(workers=2)) as service,
            HttpFrontendThread(service) as frontend,
        ):
            port = frontend.start()
            status, body = self._post(port, "/submit", graph_to_payload(graph))
            assert status == 202
            request_id = body["request_id"]
            deadline = time.monotonic() + 60.0
            while True:
                status, result = self._post_free_get(port, f"/result/{request_id}")
                if status == 200:
                    break
                assert status == 202
                assert time.monotonic() < deadline
                time.sleep(0.02)
        assert result["ok"] is True
        assert result["plan"]["app_name"] == graph.app_name

    def _post_free_get(self, port: int, path: str) -> tuple[int, dict]:
        status, raw = self._get(port, path)
        return status, json.loads(raw.decode("utf-8"))

    def test_health_metrics_and_error_paths(self):
        with (
            PlanService(make_planner("spectral"), ServiceConfig(workers=1)) as service,
            HttpFrontendThread(service) as frontend,
        ):
            port = frontend.start()
            status, body = self._get(port, "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"

            status, body = self._post(port, "/plan", {"functions": "nope"})
            assert status == 400
            assert body["error"]["code"] == "invalid-graph"

            status, body = self._post_free_get(port, "/result/999999")
            assert status == 404

            status, raw = self._get(port, "/metrics")
            assert status == 200
            assert b"worker_pool_size" in raw and b"plan cache" in raw

    def test_loop_stays_responsive_during_slow_plan(self):
        # Regression guard for the async-safety fixes: the blocking
        # submit/result path runs on the executor, so a slow plan must
        # not stall the event loop — concurrent /healthz probes keep
        # answering promptly while the plan is in flight.
        planner = make_planner("spectral")
        inner = planner.plan_user

        def slowed(graph):
            time.sleep(1.0)
            return inner(graph)

        planner.plan_user = slowed
        graph = _random_call_graph(31)
        with (
            PlanService(planner, ServiceConfig(workers=1)) as service,
            HttpFrontendThread(service) as frontend,
        ):
            port = frontend.start()
            outcome: dict[str, object] = {}

            def slow_post() -> None:
                outcome["plan"] = self._post(port, "/plan", graph_to_payload(graph))

            poster = threading.Thread(target=slow_post)
            poster.start()
            time.sleep(0.15)  # let the slow plan get in flight
            latencies = []
            while poster.is_alive() and len(latencies) < 5:
                probe_started = time.monotonic()
                status, body = self._get(port, "/healthz")
                latencies.append(time.monotonic() - probe_started)
                assert status == 200 and json.loads(body)["status"] == "ok"
            poster.join(timeout=30.0)
            assert not poster.is_alive()

        status, body = outcome["plan"]
        assert status == 200 and body["ok"] is True
        assert latencies, "healthz probes must overlap the in-flight plan"
        assert max(latencies) < 0.5, f"event loop stalled during plan: {latencies}"

    def test_parse_payload_round_trips_fingerprint(self):
        for seed in range(5):
            graph = _random_call_graph(seed)
            rebuilt = parse_graph_payload(graph_to_payload(graph))
            assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)
