"""Tests for the ``repro.analysis`` static-analysis battery.

Each rule family is exercised with at least one seeded violation
(including an ``id()``-keyed-cache fixture mirroring the historical
planner bug), suppression semantics and their audit are covered, the
CLI's exit codes and JSON schema are checked, and — the gate itself —
the shipped tree must come back clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    all_rules,
    analyze_paths,
    analyze_source,
    select_rules,
)
from repro.analysis.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _scan(source: str, module_name: str = "repro.core.fixture") -> list:
    return analyze_source(textwrap.dedent(source), module_name=module_name)


def _rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


class TestDeterminismRules:
    def test_global_random_call_flagged(self):
        findings = _scan(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert "determinism/unseeded-random" in _rule_ids(findings)

    def test_unseeded_default_rng_flagged_seeded_allowed(self):
        findings = _scan(
            """
            import numpy as np

            bad = np.random.default_rng()
            good = np.random.default_rng(7)
            """
        )
        unseeded = [
            f for f in findings if f.rule_id == "determinism/unseeded-random"
        ]
        assert len(unseeded) == 1

    def test_legacy_numpy_global_api_flagged(self):
        findings = _scan(
            """
            import numpy as np

            noise = np.random.rand(8)
            """
        )
        assert "determinism/unseeded-random" in _rule_ids(findings)

    def test_wall_clock_flagged_measurement_clock_allowed(self):
        findings = _scan(
            """
            import time

            stamp = time.time()
            elapsed = time.perf_counter()
            """
        )
        wall = [f for f in findings if f.rule_id == "determinism/wall-clock"]
        assert len(wall) == 1

    def test_id_keyed_cache_fixture_mirroring_planner_bug(self):
        # The exact shape of the historical planner bug: an id()-keyed
        # memo plus an ("id", id(...)) fallback cache key.
        findings = _scan(
            """
            def plan_system(call_graphs):
                key_memo = {}
                for graph in call_graphs:
                    cache_key = key_memo.get(id(graph))
                    if cache_key is None:
                        cache_key = ("id", id(graph))
                        key_memo[id(graph)] = cache_key
            """
        )
        id_findings = [
            f for f in findings if f.rule_id == "determinism/id-keyed-state"
        ]
        assert len(id_findings) == 3
        assert "fingerprint" in id_findings[0].hint

    def test_rules_scoped_to_planning_packages(self):
        source = """
        import random

        def jitter():
            return random.random()
        """
        assert _scan(source, module_name="repro.experiments.fixture") == []


class TestLockRules:
    def test_unguarded_write_to_guarded_attribute(self):
        findings = _scan(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    with self._lock:
                        self._value += 1

                def reset(self):
                    self._value = 0
            """,
            module_name="repro.service.fixture",
        )
        unguarded = [
            f for f in findings if f.rule_id == "locks/unguarded-attribute"
        ]
        assert len(unguarded) == 1
        assert "_value" in unguarded[0].message

    def test_write_in_except_block_is_not_invisible(self):
        findings = _scan(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._errors = 0

                def record(self):
                    with self._lock:
                        self._errors += 1

                def run(self, task):
                    try:
                        task()
                    except ValueError:
                        self._errors += 1
            """,
            module_name="repro.service.fixture",
        )
        assert "locks/unguarded-attribute" in _rule_ids(findings)

    def test_init_and_guarded_writes_pass(self):
        findings = _scan(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    with self._lock:
                        self._value += 1
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_inconsistent_lock_order_flagged(self):
        findings = _scan(
            """
            class Transfer:
                def debit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass

                def credit(self):
                    with self._audit_lock:
                        with self._accounts_lock:
                            pass
            """,
            module_name="repro.service.fixture",
        )
        order = [f for f in findings if f.rule_id == "locks/lock-order"]
        assert len(order) == 1

    def test_consistent_lock_order_passes(self):
        findings = _scan(
            """
            class Transfer:
                def debit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass

                def credit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "locks/lock-order"] == []


class TestPoolSafetyRules:
    def test_lambda_submission_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def run(pool, planner):
                return pool.apply(lambda: planner.plan_user(None))
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_bound_method_submission_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def run(pool, planner):
                return pool.apply(planner.plan_user, (None,))
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_nonportable_initializer_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def start(setup):
                return multiprocessing.Pool(initializer=setup)
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_module_level_function_passes(self):
        findings = _scan(
            """
            import multiprocessing

            def _plan_in_worker(graph):
                return graph

            def run(pool, graphs):
                return pool.map(_plan_in_worker, graphs)
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_thread_pool_modules_exempt(self):
        findings = _scan(
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(pool, task):
                return pool.submit(lambda: task())
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []


class TestSharedMemoryLifecycleRule:
    def test_create_without_unlink_flagged(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def publish(blob):
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                segment.close()
                return segment.name
            """,
            module_name="repro.service.fixture",
        )
        shm = [f for f in findings if f.rule_id == "poolsafety/shm-unlink"]
        assert len(shm) == 1
        assert "unlink()" in shm[0].message

    def test_create_with_close_and_unlink_passes(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def publish_and_drop(blob):
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                segment.close()
                segment.unlink()
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []

    def test_attach_without_close_flagged(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def read(name, size):
                segment = shared_memory.SharedMemory(name=name)
                return bytes(segment.buf[:size])
            """,
            module_name="repro.service.fixture",
        )
        shm = [f for f in findings if f.rule_id == "poolsafety/shm-unlink"]
        assert len(shm) == 1
        assert "attach" in shm[0].message

    def test_attach_with_close_passes(self):
        # Attachers must close but never unlink — the owner does that.
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def read(name, size):
                segment = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(segment.buf[:size])
                finally:
                    segment.close()
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []

    def test_modules_without_shared_memory_import_skipped(self):
        findings = _scan(
            """
            def publish(store, blob):
                return store.SharedMemory(create=True, size=len(blob))
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []


class TestExceptionRules:
    def test_bare_except_always_flagged(self):
        findings = _scan(
            """
            def swallow(task):
                try:
                    task()
                except:
                    pass
            """,
            module_name="repro.service.fixture",
        )
        assert "exceptions/silent-broad-except" in _rule_ids(findings)

    def test_silent_broad_except_flagged_twice(self):
        # No rationale comment AND no re-raise/recording: two findings.
        findings = _scan(
            """
            def swallow(task):
                try:
                    task()
                except Exception:
                    pass
            """,
            module_name="repro.service.fixture",
        )
        broad = [
            f for f in findings if f.rule_id == "exceptions/silent-broad-except"
        ]
        assert len(broad) == 2

    def test_rationale_plus_metric_passes(self):
        findings = _scan(
            """
            def guarded(task, metrics):
                try:
                    task()
                # Broad by contract: callbacks are user-supplied and any
                # failure must be counted, not propagated.
                except Exception:
                    metrics.counter("task_errors").inc()
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_rationale_plus_reraise_passes(self):
        findings = _scan(
            """
            def guarded(task):
                try:
                    task()
                # Broad on purpose: annotate and propagate.
                except Exception as exc:
                    raise RuntimeError("task failed") from exc
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []


class TestSuppressions:
    def test_suppression_with_reason_silences_finding(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism/wall-clock] log timestamps are cosmetic here
            """
        )
        assert findings == []

    def test_family_wide_suppression_matches(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism] fixture exercises family match
            """
        )
        assert findings == []

    def test_suppression_without_reason_is_audited(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism/wall-clock]
            """
        )
        assert "analysis/suppression-missing-reason" in _rule_ids(findings)

    def test_unused_suppression_is_audited(self):
        findings = _scan(
            """
            x = 1  # repro: allow[determinism/wall-clock] nothing here actually violates
            """
        )
        assert _rule_ids(findings) == {"analysis/unused-suppression"}

    def test_suppression_on_preceding_line_covers_next_line(self):
        findings = _scan(
            """
            import time

            # repro: allow[determinism/wall-clock] covered from the line above
            stamp = time.time()
            """
        )
        assert findings == []


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        findings = analyze_source("def broken(:\n", path="broken.py")
        assert _rule_ids(findings) == {"analysis/parse-error"}
        assert not findings[0].suppressible

    def test_select_rules_by_family_and_id(self):
        family = select_rules(["determinism"])
        assert {rule.rule_id.split("/")[0] for rule in family} == {"determinism"}
        exact = select_rules(["locks/lock-order"])
        assert [rule.rule_id for rule in exact] == ["locks/lock-order"]

    def test_select_rules_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown rule selector"):
            select_rules(["nonsense"])

    def test_rule_battery_has_all_four_families(self):
        families = {rule.rule_id.split("/")[0] for rule in all_rules()}
        assert {"determinism", "locks", "poolsafety", "exceptions"} <= families

    def test_shipped_tree_is_clean(self):
        report = analyze_paths([REPO_SRC])
        assert isinstance(report, AnalysisReport)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"repro-lint found:\n{rendered}"
        assert report.files_scanned > 100
        unexplained = [s for s in report.suppressions if not s.reason]
        assert unexplained == []


class TestCli:
    def test_clean_tree_exits_zero_strict(self, capsys):
        assert lint_main(["--strict", str(REPO_SRC / "utils")]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: clean" in out

    def test_findings_exit_one_only_under_strict(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text("import time\nstamp = time.time()\n")
        assert lint_main([str(bad)]) == 0
        assert lint_main(["--strict", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "determinism/wall-clock" in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["/nonexistent/nowhere"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--rules", "bogus", str(REPO_SRC / "utils")]) == 2
        assert "unknown rule selector" in capsys.readouterr().err

    def test_json_output_and_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        code = lint_main(
            ["--format", "json", "--json-out", str(artifact), str(REPO_SRC / "utils")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(artifact.read_text())
        assert payload["version"] == 1
        assert payload["files_scanned"] > 0
        assert payload["findings"] == []

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism/", "locks/", "poolsafety/", "exceptions/"):
            assert family in out

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--strict", str(REPO_SRC / "utils")]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out
