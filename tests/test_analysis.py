"""Tests for the ``repro.analysis`` static-analysis battery.

Each rule family is exercised with at least one seeded violation
(including an ``id()``-keyed-cache fixture mirroring the historical
planner bug and cross-module deadlock / blocking-in-async fixtures for
the whole-program rules), suppression semantics and their audit are
covered, the CLI's exit codes, parallelism, baseline, and JSON/SARIF
schemas are checked, and — the gate itself — the shipped tree must come
back clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    all_rules,
    analyze_paths,
    analyze_source,
    analyze_sources,
    select_rules,
)
from repro.analysis.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _scan(source: str, module_name: str = "repro.core.fixture") -> list:
    return analyze_source(textwrap.dedent(source), module_name=module_name)


def _scan_many(sources: dict[str, str]) -> list:
    return analyze_sources(
        {name: textwrap.dedent(source) for name, source in sources.items()}
    )


def _rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


class TestDeterminismRules:
    def test_global_random_call_flagged(self):
        findings = _scan(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert "determinism/unseeded-random" in _rule_ids(findings)

    def test_unseeded_default_rng_flagged_seeded_allowed(self):
        findings = _scan(
            """
            import numpy as np

            bad = np.random.default_rng()
            good = np.random.default_rng(7)
            """
        )
        unseeded = [
            f for f in findings if f.rule_id == "determinism/unseeded-random"
        ]
        assert len(unseeded) == 1

    def test_legacy_numpy_global_api_flagged(self):
        findings = _scan(
            """
            import numpy as np

            noise = np.random.rand(8)
            """
        )
        assert "determinism/unseeded-random" in _rule_ids(findings)

    def test_wall_clock_flagged_measurement_clock_allowed(self):
        findings = _scan(
            """
            import time

            stamp = time.time()
            elapsed = time.perf_counter()
            """
        )
        wall = [f for f in findings if f.rule_id == "determinism/wall-clock"]
        assert len(wall) == 1

    def test_id_keyed_cache_fixture_mirroring_planner_bug(self):
        # The exact shape of the historical planner bug: an id()-keyed
        # memo plus an ("id", id(...)) fallback cache key.
        findings = _scan(
            """
            def plan_system(call_graphs):
                key_memo = {}
                for graph in call_graphs:
                    cache_key = key_memo.get(id(graph))
                    if cache_key is None:
                        cache_key = ("id", id(graph))
                        key_memo[id(graph)] = cache_key
            """
        )
        id_findings = [
            f for f in findings if f.rule_id == "determinism/id-keyed-state"
        ]
        assert len(id_findings) == 3
        assert "fingerprint" in id_findings[0].hint

    def test_rules_scoped_to_planning_packages(self):
        source = """
        import random

        def jitter():
            return random.random()
        """
        assert _scan(source, module_name="repro.experiments.fixture") == []


class TestLockRules:
    def test_unguarded_write_to_guarded_attribute(self):
        findings = _scan(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    with self._lock:
                        self._value += 1

                def reset(self):
                    self._value = 0
            """,
            module_name="repro.service.fixture",
        )
        unguarded = [
            f for f in findings if f.rule_id == "locks/unguarded-attribute"
        ]
        assert len(unguarded) == 1
        assert "_value" in unguarded[0].message

    def test_write_in_except_block_is_not_invisible(self):
        findings = _scan(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._errors = 0

                def record(self):
                    with self._lock:
                        self._errors += 1

                def run(self, task):
                    try:
                        task()
                    except ValueError:
                        self._errors += 1
            """,
            module_name="repro.service.fixture",
        )
        assert "locks/unguarded-attribute" in _rule_ids(findings)

    def test_init_and_guarded_writes_pass(self):
        findings = _scan(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    with self._lock:
                        self._value += 1
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_inconsistent_lock_order_flagged(self):
        findings = _scan(
            """
            class Transfer:
                def debit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass

                def credit(self):
                    with self._audit_lock:
                        with self._accounts_lock:
                            pass
            """,
            module_name="repro.service.fixture",
        )
        order = [f for f in findings if f.rule_id == "locks/lock-order"]
        assert len(order) == 1

    def test_consistent_lock_order_passes(self):
        findings = _scan(
            """
            class Transfer:
                def debit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass

                def credit(self):
                    with self._accounts_lock:
                        with self._audit_lock:
                            pass
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "locks/lock-order"] == []


class TestPoolSafetyRules:
    def test_lambda_submission_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def run(pool, planner):
                return pool.apply(lambda: planner.plan_user(None))
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_bound_method_submission_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def run(pool, planner):
                return pool.apply(planner.plan_user, (None,))
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_nonportable_initializer_flagged(self):
        findings = _scan(
            """
            import multiprocessing

            def start(setup):
                return multiprocessing.Pool(initializer=setup)
            """,
            module_name="repro.service.fixture",
        )
        assert "poolsafety/nonportable-callable" in _rule_ids(findings)

    def test_module_level_function_passes(self):
        findings = _scan(
            """
            import multiprocessing

            def _plan_in_worker(graph):
                return graph

            def run(pool, graphs):
                return pool.map(_plan_in_worker, graphs)
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_thread_pool_modules_exempt(self):
        findings = _scan(
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(pool, task):
                return pool.submit(lambda: task())
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []


class TestSharedMemoryLifecycleRule:
    def test_create_without_unlink_flagged(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def publish(blob):
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                segment.close()
                return segment.name
            """,
            module_name="repro.service.fixture",
        )
        shm = [f for f in findings if f.rule_id == "poolsafety/shm-unlink"]
        assert len(shm) == 1
        assert "unlink()" in shm[0].message

    def test_create_with_close_and_unlink_passes(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def publish_and_drop(blob):
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                segment.close()
                segment.unlink()
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []

    def test_attach_without_close_flagged(self):
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def read(name, size):
                segment = shared_memory.SharedMemory(name=name)
                return bytes(segment.buf[:size])
            """,
            module_name="repro.service.fixture",
        )
        shm = [f for f in findings if f.rule_id == "poolsafety/shm-unlink"]
        assert len(shm) == 1
        assert "attach" in shm[0].message

    def test_attach_with_close_passes(self):
        # Attachers must close but never unlink — the owner does that.
        findings = _scan(
            """
            from multiprocessing import shared_memory

            def read(name, size):
                segment = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(segment.buf[:size])
                finally:
                    segment.close()
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []

    def test_modules_without_shared_memory_import_skipped(self):
        findings = _scan(
            """
            def publish(store, blob):
                return store.SharedMemory(create=True, size=len(blob))
            """,
            module_name="repro.service.fixture",
        )
        assert [f for f in findings if f.rule_id == "poolsafety/shm-unlink"] == []


class TestExceptionRules:
    def test_bare_except_always_flagged(self):
        findings = _scan(
            """
            def swallow(task):
                try:
                    task()
                except:
                    pass
            """,
            module_name="repro.service.fixture",
        )
        assert "exceptions/silent-broad-except" in _rule_ids(findings)

    def test_silent_broad_except_flagged_twice(self):
        # No rationale comment AND no re-raise/recording: two findings.
        findings = _scan(
            """
            def swallow(task):
                try:
                    task()
                except Exception:
                    pass
            """,
            module_name="repro.service.fixture",
        )
        broad = [
            f for f in findings if f.rule_id == "exceptions/silent-broad-except"
        ]
        assert len(broad) == 2

    def test_rationale_plus_metric_passes(self):
        findings = _scan(
            """
            def guarded(task, metrics):
                try:
                    task()
                # Broad by contract: callbacks are user-supplied and any
                # failure must be counted, not propagated.
                except Exception:
                    metrics.counter("task_errors").inc()
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []

    def test_rationale_plus_reraise_passes(self):
        findings = _scan(
            """
            def guarded(task):
                try:
                    task()
                # Broad on purpose: annotate and propagate.
                except Exception as exc:
                    raise RuntimeError("task failed") from exc
            """,
            module_name="repro.service.fixture",
        )
        assert findings == []


class TestSuppressions:
    def test_suppression_with_reason_silences_finding(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism/wall-clock] log timestamps are cosmetic here
            """
        )
        assert findings == []

    def test_family_wide_suppression_matches(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism] fixture exercises family match
            """
        )
        assert findings == []

    def test_suppression_without_reason_is_audited(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism/wall-clock]
            """
        )
        assert "analysis/suppression-missing-reason" in _rule_ids(findings)

    def test_unused_suppression_is_audited(self):
        findings = _scan(
            """
            x = 1  # repro: allow[determinism/wall-clock] nothing here actually violates
            """
        )
        assert _rule_ids(findings) == {"analysis/unused-suppression"}

    def test_suppression_on_preceding_line_covers_next_line(self):
        findings = _scan(
            """
            import time

            # repro: allow[determinism/wall-clock] covered from the line above
            stamp = time.time()
            """
        )
        assert findings == []

    def test_multi_rule_suppression_silences_both_rules(self):
        findings = _scan(
            """
            import random
            import time

            # repro: allow[determinism/wall-clock,determinism/unseeded-random] one clause list, two rules
            stamp = (time.time(), random.random())
            """
        )
        assert findings == []

    def test_multi_rule_suppression_with_one_unused_clause_warns(self):
        findings = _scan(
            """
            import time

            stamp = time.time()  # repro: allow[determinism/wall-clock,poolsafety] second clause never fires
            """
        )
        assert _rule_ids(findings) == {"analysis/unused-suppression"}

    def test_stacked_suppression_comments_cover_next_statement(self):
        findings = _scan(
            """
            import random
            import time

            # repro: allow[determinism/wall-clock] stacked comment one
            # repro: allow[determinism/unseeded-random] stacked comment two
            stamp = (time.time(), random.random())
            """
        )
        assert findings == []

    def test_unused_suppression_is_warning_severity(self):
        findings = _scan(
            """
            x = 1  # repro: allow[determinism/wall-clock] nothing here actually violates
            """
        )
        assert [f.severity for f in findings] == ["warning"]
        assert findings[0].render().startswith(findings[0].path)
        assert "warning: " in findings[0].render()


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        findings = analyze_source("def broken(:\n", path="broken.py")
        assert _rule_ids(findings) == {"analysis/parse-error"}
        assert not findings[0].suppressible

    def test_select_rules_by_family_and_id(self):
        family = select_rules(["determinism"])
        assert {rule.rule_id.split("/")[0] for rule in family} == {"determinism"}
        exact = select_rules(["locks/lock-order"])
        assert [rule.rule_id for rule in exact] == ["locks/lock-order"]

    def test_select_rules_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown rule selector"):
            select_rules(["nonsense"])

    def test_rule_battery_has_all_families(self):
        families = {rule.rule_id.split("/")[0] for rule in all_rules()}
        expected = {"determinism", "locks", "poolsafety", "exceptions", "lockorder", "asyncsafety"}
        assert expected <= families

    def test_shipped_tree_is_clean(self):
        report = analyze_paths([REPO_SRC])
        assert isinstance(report, AnalysisReport)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"repro-lint found:\n{rendered}"
        assert report.files_scanned > 100
        unexplained = [s for s in report.suppressions if not s.reason]
        assert unexplained == []


class TestCli:
    def test_clean_tree_exits_zero_strict(self, capsys):
        assert lint_main(["--strict", str(REPO_SRC / "utils")]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: clean" in out

    def test_findings_exit_one_only_under_strict(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text("import time\nstamp = time.time()\n")
        assert lint_main([str(bad)]) == 0
        assert lint_main(["--strict", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "determinism/wall-clock" in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["/nonexistent/nowhere"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--rules", "bogus", str(REPO_SRC / "utils")]) == 2
        assert "unknown rule selector" in capsys.readouterr().err

    def test_json_output_and_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        code = lint_main(
            ["--format", "json", "--json-out", str(artifact), str(REPO_SRC / "utils")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(artifact.read_text())
        assert payload["version"] == 2
        assert payload["files_scanned"] > 0
        assert payload["findings"] == []
        assert payload["baselined"] == []
        assert payload["timing"]["jobs"] >= 1
        assert payload["timing"]["seconds"] >= 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism/", "locks/", "poolsafety/", "exceptions/"):
            assert family in out

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--strict", str(REPO_SRC / "utils")]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out


# Two modules whose lock orders conflict only when analysed together:
# fix_a takes registry then store; fix_b (through a typed parameter)
# takes store then — via a helper call — registry.
_DEADLOCK_MOD_A = """
import threading


class Registry:
    def __init__(self):
        self.lock = threading.Lock()


class Store:
    def __init__(self, registry: Registry):
        self.lock = threading.Lock()
        self.registry = registry

    def forward(self):
        with self.registry.lock:
            with self.lock:
                pass
"""

_DEADLOCK_MOD_B = """
from repro.core.fix_a import Store


def drain(store: Store):
    with store.lock:
        touch_registry(store)


def touch_registry(store: Store):
    with store.registry.lock:
        pass
"""


class TestGlobalLockOrderRule:
    def test_cross_module_cycle_reported_with_witness_path(self):
        findings = _scan_many(
            {"repro.core.fix_a": _DEADLOCK_MOD_A, "repro.core.fix_b": _DEADLOCK_MOD_B}
        )
        cycles = [f for f in findings if f.rule_id == "lockorder/cycle"]
        assert len(cycles) == 1
        message = cycles[0].message
        assert "potential deadlock: lock-order cycle" in message
        # Both conflicting acquisition sites are cited with file:line...
        assert "repro/core/fix_a.py:" in message
        assert "repro/core/fix_b.py:" in message
        # ...and the cross-module order goes through the call chain.
        assert "repro.core.fix_b.drain -> repro.core.fix_b.touch_registry" in message

    def test_each_module_alone_is_clean(self):
        assert _scan_many({"repro.core.fix_a": _DEADLOCK_MOD_A}) == []

    def test_consistent_order_across_modules_is_clean(self):
        consistent = _DEADLOCK_MOD_B.replace(
            "    with store.lock:\n        touch_registry(store)",
            "    with store.registry.lock:\n        with store.lock:\n            pass",
        )
        findings = _scan_many(
            {"repro.core.fix_a": _DEADLOCK_MOD_A, "repro.core.fix_b": consistent}
        )
        assert [f for f in findings if f.rule_id == "lockorder/cycle"] == []

    def test_untyped_parameter_stays_silent(self):
        # Under-approximation: without the annotation the callee cannot
        # be tied to Store, so no edge — and no false positive.
        untyped = _DEADLOCK_MOD_B.replace(": Store", "")
        findings = _scan_many(
            {"repro.core.fix_a": _DEADLOCK_MOD_A, "repro.core.fix_b": untyped}
        )
        assert [f for f in findings if f.rule_id == "lockorder/cycle"] == []


_ASYNC_MOD = """
import time


class Handler:
    async def route(self):
        self.work()

    def work(self):
        time.sleep(0.5)
"""


class TestBlockingInAsyncRule:
    def test_transitive_blocking_call_reported_with_chain(self):
        findings = _scan(_ASYNC_MOD, module_name="repro.core.fix_async")
        blocking = [f for f in findings if f.rule_id == "asyncsafety/blocking-call"]
        assert len(blocking) == 1
        message = blocking[0].message
        assert "async function repro.core.fix_async.Handler.route" in message
        assert "time.sleep" in message
        assert (
            "call chain repro.core.fix_async.Handler.route"
            " -> repro.core.fix_async.Handler.work" in message
        )
        # Anchored at the call edge inside the async function, so the
        # suppression lives where the decision is made.
        assert blocking[0].line == 7

    def test_direct_blocking_call_reported_at_site(self):
        findings = _scan(
            """
            import time

            async def tick():
                time.sleep(0.1)
            """,
            module_name="repro.core.fix_async",
        )
        blocking = [f for f in findings if f.rule_id == "asyncsafety/blocking-call"]
        assert len(blocking) == 1
        assert "blocks the event loop with time.sleep" in blocking[0].message

    def test_run_in_executor_exempts_the_callee(self):
        findings = _scan(
            """
            import asyncio
            import time


            def work():
                time.sleep(0.5)


            async def route():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, work)
            """,
            module_name="repro.core.fix_async",
        )
        assert [f for f in findings if f.rule_id == "asyncsafety/blocking-call"] == []

    def test_cross_module_reach_is_reported(self):
        helper = """
        import time


        def crunch():
            time.sleep(1.0)
        """
        entry = """
        from repro.core.fix_help import crunch


        async def route():
            crunch()
        """
        findings = _scan_many(
            {"repro.core.fix_help": helper, "repro.core.fix_entry": entry}
        )
        blocking = [f for f in findings if f.rule_id == "asyncsafety/blocking-call"]
        assert len(blocking) == 1
        assert blocking[0].path == "repro/core/fix_entry.py"
        assert "repro.core.fix_help.crunch" in blocking[0].message

    def test_finding_is_suppressible_at_the_call_edge(self):
        findings = _scan(
            """
            import time


            class Handler:
                async def route(self):
                    # repro: allow[asyncsafety/blocking-call] startup-only path, loop not serving yet
                    self.work()

                def work(self):
                    time.sleep(0.5)
            """,
            module_name="repro.core.fix_async",
        )
        assert [f for f in findings if f.rule_id == "asyncsafety/blocking-call"] == []


class TestParallelAndBaseline:
    @staticmethod
    def _seed_tree(root: Path) -> Path:
        pkg = root / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "one.py").write_text("import time\nstamp = time.time()\n")
        (pkg / "two.py").write_text("import random\nroll = random.random()\n")
        (pkg / "three.py").write_text("value = 3\n")
        return root

    def test_jobs_parity_report_is_identical(self, tmp_path):
        tree = self._seed_tree(tmp_path)
        serial = analyze_paths([tree], jobs=1)
        parallel = analyze_paths([tree], jobs=4)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )
        assert len(serial.findings) == 2

    def test_cli_jobs_parity_and_timing_artifact(self, tmp_path, capsys):
        tree = self._seed_tree(tmp_path / "src")
        payloads = []
        for jobs in ("1", "3"):
            artifact = tmp_path / f"report-{jobs}.json"
            code = lint_main(
                ["--format", "json", "--jobs", jobs, "--json-out", str(artifact), str(tree)]
            )
            assert code == 0
            capsys.readouterr()
            payloads.append(json.loads(artifact.read_text()))
        for payload, jobs in zip(payloads, (1, 3)):
            timing = payload.pop("timing")
            assert timing["jobs"] == jobs
            assert timing["seconds"] >= 0
        assert payloads[0] == payloads[1]

    def test_cli_rejects_nonpositive_jobs(self, tmp_path, capsys):
        tree = self._seed_tree(tmp_path)
        assert lint_main(["--jobs", "0", str(tree)]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_baseline_round_trip_gates_only_new_findings(self, tmp_path, capsys):
        tree = self._seed_tree(tmp_path / "src")
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--write-baseline", str(baseline), str(tree)]) == 0
        capsys.readouterr()

        # Known findings are recorded, not reported: strict passes.
        artifact = tmp_path / "report.json"
        code = lint_main(
            [
                "--strict",
                "--format",
                "json",
                "--baseline",
                str(baseline),
                "--json-out",
                str(artifact),
                str(tree),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["findings"] == []
        assert {entry["rule"] for entry in payload["baselined"]} == {
            "determinism/wall-clock",
            "determinism/unseeded-random",
        }

        # A fresh violation is NOT covered by the baseline.
        (tree / "repro" / "core" / "four.py").write_text("import time\nnow = time.time()\n")
        assert lint_main(["--strict", "--baseline", str(baseline), str(tree)]) == 1
        assert "four.py" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        tree = self._seed_tree(tmp_path / "src")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{\"version\": 99}\n")
        assert lint_main(["--baseline", str(baseline), str(tree)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestSarifOutput:
    def test_sarif_artifact_structure(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text("import time\nstamp = time.time()\n")
        sarif_path = tmp_path / "lint-report.sarif"
        assert lint_main(["--sarif", str(sarif_path), str(bad)]) == 0
        capsys.readouterr()

        document = json.loads(sarif_path.read_text())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "determinism/wall-clock" in rule_ids
        results = run["results"]
        assert len(results) == 1
        result = results[0]
        assert result["ruleId"] == "determinism/wall-clock"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("fixture.py")
        assert location["region"]["startLine"] == 2
