"""Determinism guarantees and workload calibration tests.

Determinism is a core library promise (every stochastic component draws
through seeded streams); calibration checks that NETGEN workloads look
like the function data-flow graphs the paper describes.
"""

import pytest

from repro.core import make_planner
from repro.experiments.figures import _Averager
from repro.graphs.metrics import (
    average_clustering,
    average_degree,
    density,
    edge_weight_summary,
)
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, SystemConsumption, UserContext
from repro.mec.energy import ConsumptionBreakdown
from repro.workloads.applications import (
    call_graph_from_weighted_graph,
    synthesize_application,
)
from repro.workloads.multiuser import build_mec_system
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import quick_profile


class TestPipelineDeterminism:
    @pytest.mark.parametrize("strategy", ["spectral", "maxflow", "kl", "multilevel-kl"])
    def test_plan_system_is_reproducible(self, strategy):
        def run():
            app = synthesize_application("det", n_functions=50, seed=31)
            system = MECSystem(
                EdgeServer(300.0), [UserContext(MobileDevice("u1"), app)]
            )
            result = make_planner(strategy).plan_system(system, {"u1": app})
            return (
                result.consumption.energy,
                result.consumption.time,
                tuple(sorted(result.scheme.remote_for("u1"))),
            )

        assert run() == run()

    def test_multiuser_workload_reproducible(self):
        profile = quick_profile()
        a = build_mec_system(5, profile, graph_size=60)
        b = build_mec_system(5, profile, graph_size=60)
        for graph_a, graph_b in zip(a.distinct_graphs, b.distinct_graphs):
            assert graph_a.total_communication() == pytest.approx(
                graph_b.total_communication()
            )
            assert sorted(graph_a.functions()) == sorted(graph_b.functions())

    def test_full_experiment_row_reproducible(self):
        from repro.experiments.figures import run_single_user_energy_experiment
        from repro.workloads.profiles import ExperimentProfile

        tiny = ExperimentProfile(
            name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        first = run_single_user_energy_experiment(tiny, repetitions=1)
        second = run_single_user_energy_experiment(tiny, repetitions=1)
        for row_a, row_b in zip(first, second):
            assert row_a.total_energy == pytest.approx(row_b.total_energy)
            assert row_a.offloaded_functions == row_b.offloaded_functions


class TestNetgenCalibration:
    """Generated graphs must resemble function data flow graphs: sparse,
    locally clustered, bimodal edge weights."""

    @pytest.fixture(scope="class")
    def graph(self):
        return netgen_graph(NetgenConfig(n_nodes=500, n_edges=2643, seed=11))

    def test_sparsity(self, graph):
        assert density(graph) < 0.05  # call graphs are very sparse

    def test_degree_in_call_graph_range(self, graph):
        avg = average_degree(graph)
        assert 4.0 <= avg <= 15.0  # Table I implies ~5-16 edges/node

    def test_local_clustering_present(self, graph):
        # Tightly coupled clusters create triangles; random sparse graphs
        # of this density would sit near 0.01.
        assert average_clustering(graph) > 0.1

    def test_edge_weights_bimodal(self, graph):
        summary = edge_weight_summary(graph)
        config = NetgenConfig(n_nodes=500, n_edges=2643, seed=11)
        # Mean sits between the light and heavy bands, far from both.
        assert config.inter_weight_range[1] < summary.mean < config.intra_weight_range[0] * 1.5

    def test_unoffloadable_sampling_deterministic(self, graph):
        a = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.1, seed=3)
        b = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.1, seed=3)
        assert a.unoffloadable_functions() == b.unoffloadable_functions()
        c = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.1, seed=4)
        assert a.unoffloadable_functions() != c.unoffloadable_functions()


class TestAverager:
    def make_consumption(self, local: float, tx: float) -> SystemConsumption:
        consumption = SystemConsumption()
        consumption.per_user["u"] = ConsumptionBreakdown(
            local_energy=local,
            transmission_energy=tx,
            local_time=1.0,
            remote_time=1.0,
            transmission_time=0.0,
            waiting_time=0.0,
        )
        return consumption

    def test_mean_over_repetitions(self):
        averager = _Averager()
        averager.add("alg", 100, self.make_consumption(10.0, 2.0), offloaded=5)
        averager.add("alg", 100, self.make_consumption(20.0, 4.0), offloaded=7)
        rows = averager.rows(("alg",), (100,))
        assert len(rows) == 1
        row = rows[0]
        assert row.local_energy == pytest.approx(15.0)
        assert row.transmission_energy == pytest.approx(3.0)
        assert row.offloaded_functions == pytest.approx(6.0)
        assert row.repetitions == 2

    def test_rows_ordered_by_scale_then_algorithm(self):
        averager = _Averager()
        for scale in (200, 100):
            for algorithm in ("b", "a"):
                averager.add(algorithm, scale, self.make_consumption(1.0, 1.0), 0)
        rows = averager.rows(("a", "b"), (100, 200))
        assert [(r.scale, r.algorithm) for r in rows] == [
            (100, "a"),
            (100, "b"),
            (200, "a"),
            (200, "b"),
        ]

    def test_missing_combination_skipped(self):
        averager = _Averager()
        averager.add("a", 100, self.make_consumption(1.0, 1.0), 0)
        rows = averager.rows(("a", "ghost"), (100, 999))
        assert len(rows) == 1
