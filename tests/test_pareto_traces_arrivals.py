"""Tests for Pareto exploration, workload traces, and simulated arrivals."""

import pytest

from repro.core.baselines import spectral_cut_strategy
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.pareto import (
    DEFAULT_RATIOS,
    ParetoPoint,
    explore_tradeoff,
    pareto_front,
)
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import simulate_scheme
from repro.workloads.applications import synthesize_application
from repro.workloads.multiuser import build_mec_system, poisson_arrivals
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import load_trace, save_trace

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


class TestParetoPoint:
    def test_dominates(self):
        a = ParetoPoint(1.0, 1.0, 1, 1, 0)
        b = ParetoPoint(2.0, 2.0, 1, 1, 0)
        c = ParetoPoint(0.5, 3.0, 1, 1, 0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)

    def test_front_filters_dominated(self):
        points = [
            ParetoPoint(1.0, 4.0, 1, 1, 0),
            ParetoPoint(2.0, 2.0, 1, 1, 0),
            ParetoPoint(4.0, 1.0, 1, 1, 0),
            ParetoPoint(3.0, 3.0, 1, 1, 0),  # dominated by (2, 2)
        ]
        front = pareto_front(points)
        assert len(front) == 3
        assert all(p.energy != 3.0 for p in front)

    def test_front_deduplicates(self):
        points = [ParetoPoint(1.0, 1.0, 1, 1, 0), ParetoPoint(1.0, 1.0, 2, 1, 0)]
        assert len(pareto_front(points)) == 1


class TestExploreTradeoff:
    @pytest.fixture
    def system_and_graphs(self):
        app = synthesize_application("pareto", n_functions=60, seed=5)
        device = MobileDevice("u1", profile=PROFILE)
        system = MECSystem(EdgeServer(300.0), [UserContext(device, app)])
        return system, {"u1": app}

    def test_sweep_produces_one_point_per_ratio(self, system_and_graphs):
        system, graphs = system_and_graphs
        points = explore_tradeoff(system, graphs, spectral_cut_strategy())
        assert len(points) == len(DEFAULT_RATIOS)

    def test_extremes_order_correctly(self, system_and_graphs):
        """The time-only extreme is at least as fast as the energy-only
        extreme, and vice versa for energy."""
        system, graphs = system_and_graphs
        points = explore_tradeoff(
            system, graphs, spectral_cut_strategy(), ratios=(0.0, float("inf"))
        )
        time_only, energy_only = points
        assert time_only.time <= energy_only.time + 1e-9
        assert energy_only.energy <= time_only.energy + 1e-9

    def test_front_is_subset_and_nonempty(self, system_and_graphs):
        system, graphs = system_and_graphs
        points = explore_tradeoff(system, graphs, spectral_cut_strategy())
        front = pareto_front(points)
        assert front
        sampled = {(p.energy, p.time) for p in points}
        assert all((p.energy, p.time) in sampled for p in front)

    def test_negative_ratio_rejected(self, system_and_graphs):
        system, graphs = system_and_graphs
        with pytest.raises(ValueError):
            explore_tradeoff(system, graphs, spectral_cut_strategy(), ratios=(-1.0,))


class TestTraces:
    def test_roundtrip_preserves_structure(self, tmp_path):
        workload = build_mec_system(5, quick_profile(), graph_size=60)
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        loaded = load_trace(path)

        assert len(loaded.system.users) == 5
        assert loaded.system.server.total_capacity == pytest.approx(
            workload.system.server.total_capacity
        )
        assert loaded.user_graph_index == workload.user_graph_index
        for original, rebuilt in zip(workload.distinct_graphs, loaded.distinct_graphs):
            assert rebuilt.function_count == original.function_count
            assert rebuilt.total_communication() == pytest.approx(
                original.total_communication()
            )

    def test_pool_sharing_preserved(self, tmp_path):
        workload = build_mec_system(6, quick_profile(), graph_size=60)
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        loaded = load_trace(path)
        # Users with the same pool index share one object.
        by_index: dict[int, object] = {}
        for user_id, index in loaded.user_graph_index.items():
            graph = loaded.call_graphs[user_id]
            if index in by_index:
                assert graph is by_index[index]
            by_index[index] = graph

    def test_plans_identically_after_reload(self, tmp_path):
        from repro.core import make_planner

        workload = build_mec_system(4, quick_profile(), graph_size=60)
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        loaded = load_trace(path)
        planner = make_planner("spectral")
        original = planner.plan_system(workload.system, workload.call_graphs)
        reloaded = planner.plan_system(loaded.system, loaded.call_graphs)
        assert reloaded.consumption.energy == pytest.approx(original.consumption.energy)
        assert reloaded.consumption.time == pytest.approx(original.consumption.time)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_trace(path)


class TestArrivals:
    def make_user(self, uid: str):
        from repro.callgraph.model import FunctionCallGraph

        fcg = FunctionCallGraph(uid)
        fcg.add_function("pin", computation=20.0, offloadable=False)
        fcg.add_function("ship", computation=100.0)
        fcg.add_data_flow("pin", "ship", 20.0)
        app = PartitionedApplication(uid, fcg, [{"ship"}])
        return UserContext(MobileDevice(uid, profile=PROFILE), fcg), app

    def test_poisson_arrivals_monotone_and_seeded(self):
        users = [f"u{i}" for i in range(10)]
        a = poisson_arrivals(users, rate=2.0, seed=1)
        b = poisson_arrivals(users, rate=2.0, seed=1)
        assert a == b
        times = [a[u] for u in users]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))

    def test_poisson_rate_validated(self):
        with pytest.raises(ValueError):
            poisson_arrivals(["u1"], rate=0.0)

    def test_arrival_shifts_timeline(self):
        ctx, app = self.make_user("u1")
        system = MECSystem(EdgeServer(50.0), [ctx])
        base = simulate_scheme(system, {"u1": app}, {"u1": {0}})
        shifted = simulate_scheme(
            system, {"u1": app}, {"u1": {0}}, arrivals={"u1": 5.0}
        )
        t0, t5 = base.timeline("u1"), shifted.timeline("u1")
        assert t5.local_finish == pytest.approx(t0.local_finish + 5.0)
        assert t5.upload_finish == pytest.approx(t0.upload_finish + 5.0)
        assert t5.service_finish == pytest.approx(t0.service_finish + 5.0)
        # Relative metrics are arrival-invariant.
        assert t5.sojourn == pytest.approx(t0.sojourn)
        assert t5.airtime == pytest.approx(t0.airtime)
        assert shifted.total_energy == pytest.approx(base.total_energy)

    def test_staggered_arrivals_reduce_server_contention(self):
        contexts, apps = [], {}
        for uid in ("u1", "u2"):
            ctx, app = self.make_user(uid)
            contexts.append(ctx)
            apps[uid] = app
        system = MECSystem(EdgeServer(10.0), contexts)  # slow server
        placement = {"u1": {0}, "u2": {0}}
        together = simulate_scheme(system, apps, placement)
        staggered = simulate_scheme(
            system, apps, placement, arrivals={"u2": 100.0}
        )
        # Arriving after u1's job drained, u2 waits less.
        assert staggered.timeline("u2").waiting < together.timeline("u2").waiting

    def test_unknown_user_arrival_rejected(self):
        ctx, app = self.make_user("u1")
        system = MECSystem(EdgeServer(50.0), [ctx])
        with pytest.raises(ValueError, match="unknown user"):
            simulate_scheme(system, {"u1": app}, {"u1": {0}}, arrivals={"ghost": 1.0})

    def test_negative_arrival_rejected(self):
        ctx, app = self.make_user("u1")
        system = MECSystem(EdgeServer(50.0), [ctx])
        with pytest.raises(ValueError, match=">= 0"):
            simulate_scheme(system, {"u1": app}, {"u1": {0}}, arrivals={"u1": -1.0})

    def test_fault_before_arrival_applies_from_upload_start(self):
        """A bandwidth drop that fires while the user is still absent must
        slow their upload from its first second."""
        from repro.simulation import BandwidthChange

        ctx, app = self.make_user("u1")  # cut 20 at bandwidth 70
        system = MECSystem(EdgeServer(500.0), [ctx])
        report = simulate_scheme(
            system,
            {"u1": app},
            {"u1": {0}},
            faults=[BandwidthChange(time=1.0, user_id="u1", factor=0.5)],
            arrivals={"u1": 10.0},
        )
        t = report.timeline("u1")
        # Upload runs 20 units at 35/s (halved) starting at t=10.
        assert t.upload_finish == pytest.approx(10.0 + 20.0 / 35.0)
