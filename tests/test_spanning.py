"""Tests for spanning forests and the coupling backbone."""

import pytest

from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.spanning import (
    backbone_fraction,
    maximum_spanning_forest,
    minimum_spanning_forest,
)
from repro.graphs.weighted_graph import WeightedGraph


class TestMaximumSpanningForest:
    def test_tree_on_connected_graph(self):
        g = random_connected_graph(15, 30, seed=1)
        forest = maximum_spanning_forest(g)
        assert len(forest.edges) == 14
        assert forest.tree_count == 1

    def test_forest_counts_components(self):
        g = WeightedGraph()
        for n in range(5):
            g.add_node(n)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        forest = maximum_spanning_forest(g)
        assert forest.tree_count == 3  # {0,1}, {2,3}, {4}
        assert len(forest.edges) == 2

    def test_keeps_heavy_edges(self):
        g = two_cluster_graph(3, intra_weight=10.0, bridge_weight=1.0)
        forest = maximum_spanning_forest(g)
        # The bridge must be included (only connection), plus heavy edges.
        weights = sorted(w for _, _, w in forest.edges)
        assert weights[0] == 1.0
        assert all(w == 10.0 for w in weights[1:])

    def test_as_graph_roundtrip(self):
        g = random_connected_graph(10, 20, seed=2)
        forest = maximum_spanning_forest(g)
        tree = forest.as_graph(g)
        assert tree.node_count == g.node_count
        assert tree.edge_count == 9
        assert tree.total_node_weight() == pytest.approx(g.total_node_weight())

    def test_cycle_free(self):
        from repro.graphs.components import connected_components

        g = random_connected_graph(12, 30, seed=3)
        tree = maximum_spanning_forest(g).as_graph(g)
        # Tree: edges = nodes - components.
        assert tree.edge_count == tree.node_count - len(connected_components(tree))


class TestMinimumSpanningForest:
    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        for seed in range(3):
            g = random_connected_graph(12, 26, seed=seed)
            nxg = networkx.Graph()
            for u, v, w in g.edges():
                nxg.add_edge(u, v, weight=w)
            expected = sum(
                d["weight"]
                for _, _, d in networkx.minimum_spanning_tree(nxg).edges(data=True)
            )
            ours = minimum_spanning_forest(g).total_weight
            assert ours == pytest.approx(expected)

    def test_max_geq_min(self):
        g = random_connected_graph(14, 30, seed=4)
        assert (
            maximum_spanning_forest(g).total_weight
            >= minimum_spanning_forest(g).total_weight
        )

    def test_equal_on_trees(self):
        g = path_graph(6, edge_weight=2.0)
        assert maximum_spanning_forest(g).total_weight == pytest.approx(10.0)
        assert minimum_spanning_forest(g).total_weight == pytest.approx(10.0)


class TestBackbone:
    def test_tree_backbone_is_everything(self):
        g = path_graph(6)
        assert backbone_fraction(g) == pytest.approx(1.0)

    def test_edgeless_graph(self):
        g = WeightedGraph()
        g.add_node("x")
        assert backbone_fraction(g) == 0.0

    def test_netgen_workloads_are_backbone_heavy(self):
        """The regime claim: clustered call-graph workloads concentrate
        traffic on strong chains."""
        from repro.workloads.netgen import NetgenConfig, netgen_graph

        g = netgen_graph(NetgenConfig(n_nodes=200, n_edges=900, seed=5))
        assert backbone_fraction(g) > 0.4

    def test_uniform_clique_is_backbone_light(self):
        g = random_connected_graph(
            10, 45, seed=6, edge_weight_range=(5.0, 5.0)
        )  # uniform complete graph
        # Backbone keeps n-1 of m equal edges.
        assert backbone_fraction(g) == pytest.approx(9 / 45)
