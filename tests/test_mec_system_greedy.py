"""Tests for the MEC system evaluation and Algorithm 2's greedy."""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.mec.admission import EqualShareAllocation, FCFSQueueAllocation
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.greedy import (
    PlacementEvaluator,
    generate_offloading_scheme,
    initial_placement,
)
from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import OffloadingScheme, PartitionedApplication
from repro.mec.system import MECSystem, UserContext


def make_app(user_id: str = "u1") -> tuple[FunctionCallGraph, PartitionedApplication]:
    """Call graph with one pinned anchor and two offloadable parts."""
    fcg = FunctionCallGraph("test")
    fcg.add_function("main", computation=5.0, offloadable=False)
    fcg.add_function("a", computation=40.0)
    fcg.add_function("b", computation=30.0)
    fcg.add_function("c", computation=60.0)
    fcg.add_function("d", computation=20.0)
    fcg.add_data_flow("main", "a", 4.0)
    fcg.add_data_flow("a", "b", 12.0)
    fcg.add_data_flow("b", "c", 2.0)
    fcg.add_data_flow("c", "d", 15.0)
    app = PartitionedApplication(user_id, fcg, [{"a", "b"}, {"c", "d"}])
    return fcg, app


def make_system(n_users: int = 1, allocation=None) -> MECSystem:
    profile = DeviceProfile(
        compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
    )
    users = []
    for k in range(n_users):
        fcg, _ = make_app(f"u{k+1}")
        users.append(UserContext(MobileDevice(f"u{k+1}", profile=profile), fcg))
    return MECSystem(EdgeServer(total_capacity=300.0), users, allocation=allocation)


class TestPartitionedApplication:
    def test_part_metrics(self):
        _, app = make_app()
        assert app.part_count == 2
        part_ab = app.parts[0]
        assert part_ab.computation == 70.0
        assert part_ab.anchor_traffic == 4.0  # a <-> main
        assert app.parts[1].anchor_traffic == 0.0

    def test_inter_part_communication(self):
        _, app = make_app()
        assert app.inter_comm == {(0, 1): 2.0}  # b <-> c

    def test_weights_by_placement(self):
        _, app = make_app()
        assert app.remote_weight({0}) == 70.0
        assert app.local_weight({0}) == 5.0 + 80.0
        assert app.local_weight(set()) == 155.0

    def test_cut_by_placement(self):
        _, app = make_app()
        # Part 0 remote: crosses b-c (2) and main-a anchor (4).
        assert app.cut_weight({0}) == 6.0
        # Both remote: only the anchor crossing remains.
        assert app.cut_weight({0, 1}) == 4.0
        assert app.cut_weight(set()) == 0.0

    def test_overlapping_parts_rejected(self):
        fcg, _ = make_app()
        with pytest.raises(ValueError, match="overlap"):
            PartitionedApplication("u1", fcg, [{"a", "b"}, {"b", "c"}])

    def test_uncovered_function_rejected(self):
        fcg, _ = make_app()
        with pytest.raises(ValueError, match="not covered"):
            PartitionedApplication("u1", fcg, [{"a", "b"}])

    def test_pinned_function_in_part_rejected(self):
        fcg, _ = make_app()
        with pytest.raises(ValueError, match="unoffloadable"):
            PartitionedApplication("u1", fcg, [{"a", "b", "main"}, {"c", "d"}])


class TestSystemEvaluation:
    def test_all_local_consumption(self):
        system = make_system()
        _, app = make_app()
        consumption = system.evaluate_placement({"u1": app}, {"u1": set()})
        breakdown = consumption.per_user["u1"]
        assert breakdown.transmission_energy == 0.0
        assert breakdown.local_time == pytest.approx(155.0 / 20.0)
        assert breakdown.local_energy == pytest.approx(155.0 / 20.0)

    def test_offloading_reduces_local_term(self):
        system = make_system()
        _, app = make_app()
        local = system.evaluate_placement({"u1": app}, {"u1": set()})
        remote = system.evaluate_placement({"u1": app}, {"u1": {0, 1}})
        assert remote.local_energy < local.local_energy
        assert remote.transmission_energy > 0.0

    def test_duplicate_user_ids_rejected(self):
        profile = DeviceProfile()
        fcg, _ = make_app()
        users = [
            UserContext(MobileDevice("dup", profile=profile), fcg),
            UserContext(MobileDevice("dup", profile=profile), fcg),
        ]
        with pytest.raises(ValueError, match="unique"):
            MECSystem(EdgeServer(100.0), users)

    def test_no_users_rejected(self):
        with pytest.raises(ValueError):
            MECSystem(EdgeServer(100.0), [])

    def test_scheme_evaluation_matches_placement(self):
        system = make_system()
        _, app = make_app()
        scheme = OffloadingScheme(remote_functions={"u1": {"c", "d"}})
        via_scheme = system.evaluate_scheme({"u1": app}, scheme)
        via_parts = system.evaluate_placement({"u1": app}, {"u1": {1}})
        assert via_scheme.energy == pytest.approx(via_parts.energy)
        assert via_scheme.time == pytest.approx(via_parts.time)


class TestInitialPlacement:
    def test_anchored_mode_keeps_anchor_side_local(self):
        _, app = make_app()
        bisections = [({0}, {1})]
        placement = initial_placement({"u1": app}, {"u1": bisections})
        # Part 0 has anchor traffic (4 > 0) -> starts local; part 1 remote.
        assert placement["u1"] == {1}

    def test_anchored_tie_ships_heavier_side(self):
        fcg = FunctionCallGraph("t")
        fcg.add_function("a", computation=10.0)
        fcg.add_function("b", computation=50.0)
        fcg.add_data_flow("a", "b", 1.0)
        app = PartitionedApplication("u1", fcg, [{"a"}, {"b"}])
        placement = initial_placement({"u1": app}, {"u1": [({0}, {1})]})
        assert placement["u1"] == {1}  # heavier side b remote

    def test_dominated_mode_frees_compute_heavy_anchor_sides(self):
        _, app = make_app()
        placement = initial_placement(
            {"u1": app}, {"u1": [({0}, {1})]}, mode="dominated"
        )
        # Part 0: anchor 4 <= computation 70 -> remote too.
        assert placement["u1"] == {0, 1}

    def test_dominated_mode_pins_chatty_sides(self):
        fcg = FunctionCallGraph("t")
        fcg.add_function("main", computation=1.0, offloadable=False)
        fcg.add_function("chatty", computation=2.0)
        fcg.add_function("heavy", computation=50.0)
        fcg.add_data_flow("main", "chatty", 40.0)  # anchor >> computation
        fcg.add_data_flow("chatty", "heavy", 1.0)
        app = PartitionedApplication("u1", fcg, [{"chatty"}, {"heavy"}])
        placement = initial_placement(
            {"u1": app}, {"u1": [({0}, {1})]}, mode="dominated"
        )
        assert placement["u1"] == {1}

    def test_all_remote_mode(self):
        _, app = make_app()
        placement = initial_placement(
            {"u1": app}, {"u1": [({0}, {1})]}, mode="all-remote"
        )
        assert placement["u1"] == {0, 1}

    def test_unknown_mode_rejected(self):
        _, app = make_app()
        with pytest.raises(ValueError, match="unknown initial placement mode"):
            initial_placement({"u1": app}, {"u1": []}, mode="quantum")

    def test_empty_side_handled(self):
        _, app = make_app()
        placement = initial_placement({"u1": app}, {"u1": [({0}, set()), ({1}, set())]})
        # Un-split components start fully remote (Algorithm 2 inserts all
        # parts into V_2); the greedy loop is what pulls losers back.
        assert placement["u1"] == {0, 1}


class TestGreedy:
    def test_monotone_history(self):
        system = make_system()
        _, app = make_app()
        result = generate_offloading_scheme(
            system, {"u1": app}, {"u1": [({0}, {1})]}
        )
        for earlier, later in zip(result.history, result.history[1:]):
            assert later < earlier + 1e-9

    def test_unoffloadable_never_remote(self):
        system = make_system()
        _, app = make_app()
        result = generate_offloading_scheme(system, {"u1": app}, {"u1": [({0}, {1})]})
        assert "main" not in result.scheme.remote_for("u1")

    def test_lazy_matches_exhaustive(self):
        for n_users in (1, 3):
            system = make_system(n_users)
            apps = {}
            bisections = {}
            for k in range(n_users):
                _, app = make_app(f"u{k+1}")
                apps[f"u{k+1}"] = app
                bisections[f"u{k+1}"] = [({0}, {1})]
            lazy = generate_offloading_scheme(system, apps, bisections)
            exhaustive = generate_offloading_scheme(
                system, apps, bisections, exhaustive=True
            )
            assert lazy.consumption.combined() == pytest.approx(
                exhaustive.consumption.combined(), rel=1e-9
            )

    def test_final_consumption_consistent(self):
        system = make_system(2)
        apps = {}
        bisections = {}
        for k in range(2):
            _, app = make_app(f"u{k+1}")
            apps[f"u{k+1}"] = app
            bisections[f"u{k+1}"] = [({0}, {1})]
        result = generate_offloading_scheme(system, apps, bisections)
        recomputed = system.evaluate_placement(apps, result.remote_parts)
        assert result.consumption.energy == pytest.approx(recomputed.energy)
        assert result.consumption.time == pytest.approx(recomputed.time)

    def test_objective_weights_respected(self):
        """A time-only objective tolerates energy-expensive offloading."""
        system = make_system()
        _, app = make_app()
        time_only = generate_offloading_scheme(
            system,
            {"u1": app},
            {"u1": [({0}, {1})]},
            weights=ObjectiveWeights(energy=0.0, time=1.0),
        )
        energy_only = generate_offloading_scheme(
            system,
            {"u1": app},
            {"u1": [({0}, {1})]},
            weights=ObjectiveWeights(energy=1.0, time=0.0),
        )
        assert time_only.consumption.time <= energy_only.consumption.time + 1e-9
        assert energy_only.consumption.energy <= time_only.consumption.energy + 1e-9


class TestPlacementEvaluator:
    @pytest.mark.parametrize("allocation", [EqualShareAllocation(), FCFSQueueAllocation()])
    def test_incremental_matches_full_evaluation(self, allocation):
        system = make_system(3, allocation=allocation)
        apps = {}
        for k in range(3):
            _, app = make_app(f"u{k+1}")
            apps[f"u{k+1}"] = app
        remote = {"u1": {0, 1}, "u2": {1}, "u3": {0}}
        evaluator = PlacementEvaluator(
            system, apps, remote, ObjectiveWeights()
        )
        direct = system.evaluate_placement(apps, remote).combined()
        assert evaluator.combined() == pytest.approx(direct, rel=1e-9)

        # Evaluate a move without applying: must equal a from-scratch eval.
        predicted = evaluator.evaluate_move("u2", 1)
        moved = {"u1": {0, 1}, "u2": set(), "u3": {0}}
        expected = system.evaluate_placement(apps, moved).combined()
        assert predicted == pytest.approx(expected, rel=1e-9)

        # Apply and re-check state consistency.
        evaluator.apply_move("u2", 1)
        assert evaluator.combined() == pytest.approx(expected, rel=1e-9)

    def test_moving_non_remote_part_rejected(self):
        system = make_system()
        _, app = make_app()
        evaluator = PlacementEvaluator(system, {"u1": app}, {"u1": {1}}, ObjectiveWeights())
        with pytest.raises(ValueError):
            evaluator.evaluate_move("u1", 0)
