"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_graph_json(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main(["generate", "--nodes", "40", "--edges", "150", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["nodes"]) == 40
        assert len(payload["edges"]) == 150
        assert "wrote 40 nodes" in capsys.readouterr().out

    def test_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", "--nodes", "30", "--edges", "100", "--seed", "5", "--out", str(a)])
        main(["generate", "--nodes", "30", "--edges", "100", "--seed", "5", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestTable1:
    def test_custom_sizes(self, capsys):
        code = main(["table1", "--sizes", "60", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Network1" in out
        assert "Network2" in out
        assert "reduction" in out


class TestPlanAndSimulate:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.json"
        main(["generate", "--nodes", "60", "--edges", "250", "--out", str(out)])
        return out

    def test_plan_each_strategy(self, graph_file, capsys):
        for strategy in ("spectral", "maxflow", "kl"):
            code = main(["plan", "--graph", str(graph_file), "--strategy", strategy])
            assert code == 0
            out = capsys.readouterr().out
            assert f"[{strategy}]" in out
            assert "compression:" in out

    def test_simulate_healthy(self, graph_file, capsys):
        code = main(["simulate", "--graph", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "events processed" in out

    def test_simulate_with_fault(self, graph_file, capsys):
        code = main(
            ["simulate", "--graph", str(graph_file), "--server-fault", "1.0:0.5"]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out

    def test_simulate_bad_fault_spec(self, graph_file, capsys):
        code = main(["simulate", "--graph", str(graph_file), "--server-fault", "oops"])
        assert code == 2
        assert "bad --server-fault" in capsys.readouterr().err


class TestFigures:
    def test_timing_family_quick(self, capsys, monkeypatch):
        # Shrink the profile so the CLI smoke test stays fast.
        import repro.cli as cli
        from repro.workloads.profiles import ExperimentProfile

        tiny = ExperimentProfile(
            name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        monkeypatch.setattr(cli, "_profile", lambda name: tiny)
        code = main(["figures", "timing", "--repetitions", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spectral-power" in out
        assert "spectral-spark" in out

    def test_single_user_family(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.workloads.profiles import ExperimentProfile

        tiny = ExperimentProfile(
            name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        monkeypatch.setattr(cli, "_profile", lambda name: tiny)
        code = main(["figures", "single-user", "--repetitions", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for algorithm in ("spectral", "maxflow", "kl"):
            assert algorithm in out

    def test_multi_user_family(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.workloads.profiles import ExperimentProfile

        tiny = ExperimentProfile(
            name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        monkeypatch.setattr(cli, "_profile", lambda name: tiny)
        code = main(["figures", "multi-user", "--repetitions", "1"])
        assert code == 0
        assert "users" in capsys.readouterr().out


class TestReportCommand:
    @pytest.fixture(autouse=True)
    def tiny_profile(self, monkeypatch):
        import repro.cli as cli
        from repro.workloads.profiles import ExperimentProfile

        tiny = ExperimentProfile(
            name="tiny", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        monkeypatch.setattr(cli, "_profile", lambda name: tiny)

    def test_report_to_stdout(self, capsys):
        code = main(["report", "--no-timing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# COPMECS reproduction report" in out
        assert "## Table I" in out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "--no-timing", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "## Figures 6-8" in out.read_text()
        assert "wrote report" in capsys.readouterr().out


class TestSensitivityCommand:
    def test_sweep_table_printed(self, capsys):
        code = main(["sensitivity", "power_transmit", "--graph-size", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "offloaded %" in out
        assert "power_transmit" in out

    def test_unknown_parameter_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["sensitivity", "warp_power"])


class TestSimulateJson:
    def test_json_output(self, tmp_path, capsys):
        graph = tmp_path / "g.json"
        main(["generate", "--nodes", "60", "--edges", "250", "--out", str(graph)])
        capsys.readouterr()
        code = main(["simulate", "--graph", str(graph), "--json"])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert "per_user" in payload
        assert "makespan" in payload


class TestCompressCommand:
    def test_metrics_and_dot(self, tmp_path, capsys):
        graph = tmp_path / "g.json"
        main(["generate", "--nodes", "120", "--edges", "500", "--out", str(graph)])
        capsys.readouterr()
        dot = tmp_path / "g.dot"
        code = main(["compress", "--graph", str(graph), "--dot", str(dot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "node reduction" in out
        assert "internalized traffic" in out
        assert dot.read_text().startswith("graph")

    def test_without_dot(self, tmp_path, capsys):
        graph = tmp_path / "g.json"
        main(["generate", "--nodes", "60", "--edges", "250", "--out", str(graph)])
        capsys.readouterr()
        assert main(["compress", "--graph", str(graph)]) == 0
        assert "modularity" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
