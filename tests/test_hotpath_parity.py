"""Parity tests for the hot-path optimisations.

The array-graph fast path (CSR label-propagation kernel, CSR Laplacians,
the O(1) greedy move evaluator) and the process planning backend are
pure speed-ups: every test here pins the optimised path to the original
dict-walking semantics — bit-for-bit where the computation is exact,
within solver tolerance where an iterative start vector changes the
iterate path (Fiedler warm starts).
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callgraph.model import FunctionCallGraph
from repro.compression.labels import (
    AbsoluteThreshold,
    MeanScaledThreshold,
    QuantileThreshold,
)
from repro.compression.propagation import LabelPropagation, TraversalPolicy
from repro.core import PlannerConfig, make_planner
from repro.fleet.fleet import EdgeFleet
from repro.fleet.routing import make_routing_policy
from repro.graphs import as_csr
from repro.graphs.generators import random_connected_graph
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.admission import EqualShareAllocation
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.greedy import PlacementEvaluator, generate_offloading_scheme
from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.service import (
    PlanningBackend,
    PlanService,
    ServiceConfig,
    plan_digest,
)
from repro.spectral.fiedler import FiedlerSolver
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile

THRESHOLD_RULES = [
    MeanScaledThreshold(1.0),
    MeanScaledThreshold(0.5),
    QuantileThreshold(0.5),
    AbsoluteThreshold(3.0),
]


def _random_call_graph(seed: int, app_name: str = "parity") -> FunctionCallGraph:
    """Small random call graph with varied weights/components/flags."""
    rng = random.Random(seed)
    n = rng.randint(4, 14)
    fcg = FunctionCallGraph(app_name)
    names = [f"f{i}" for i in range(n)]
    for name in names:
        fcg.add_function(
            name,
            computation=round(rng.uniform(1.0, 50.0), 3),
            component=rng.choice(["main", "aux"]),
            offloadable=rng.random() > 0.2,
        )
    for i in range(1, n):
        j = rng.randrange(i)
        fcg.add_data_flow(names[i], names[j], round(rng.uniform(0.5, 20.0), 3))
    for _ in range(rng.randint(0, n)):
        u, v = rng.sample(names, 2)
        if not fcg.graph.has_edge(u, v):
            fcg.add_data_flow(u, v, round(rng.uniform(0.5, 20.0), 3))
    return fcg


# ----------------------------------------------------------------------
# Label propagation: dict vs CSR kernel
# ----------------------------------------------------------------------
class TestLabelPropagationKernelParity:
    @given(
        seed=st.integers(0, 10_000),
        policy=st.sampled_from([TraversalPolicy.BFS, TraversalPolicy.DFS]),
        rule_index=st.integers(0, len(THRESHOLD_RULES) - 1),
        n_nodes=st.integers(8, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_kernels_bit_identical_on_random_graphs(self, seed, policy, rule_index, n_nodes):
        n_edges = min(2 * n_nodes, n_nodes * (n_nodes - 1) // 2)
        graph = random_connected_graph(n_nodes, n_edges, seed=seed)
        rule = THRESHOLD_RULES[rule_index]
        reports = {
            kernel: LabelPropagation(rule, policy=policy, kernel=kernel).run(graph)
            for kernel in ("dict", "csr", "numpy")
        }
        for kernel in ("csr", "numpy"):
            assert reports["dict"].labels == reports[kernel].labels
            assert reports["dict"].rounds == reports[kernel].rounds
            assert reports["dict"].updates_per_round == reports[kernel].updates_per_round
            assert reports["dict"].threshold == reports[kernel].threshold
            assert reports["dict"].starter == reports[kernel].starter

    def test_kernels_identical_on_disconnected_graphs(self):
        for seed in range(6):
            graph = WeightedGraph()
            for component, offset in ((random_connected_graph(10, 14, seed=seed), 0),
                                      (random_connected_graph(7, 9, seed=seed + 50), 100)):
                for node in component.node_list():
                    graph.add_node(node + offset, weight=component.node_weight(node))
                for u, v, weight in component.edges():
                    graph.add_edge(u + offset, v + offset, weight)
            reports = {
                kernel: LabelPropagation(MeanScaledThreshold(1.0), kernel=kernel).run(graph)
                for kernel in ("dict", "csr", "numpy")
            }
            for kernel in ("csr", "numpy"):
                assert reports["dict"].labels == reports[kernel].labels
                assert reports["dict"].rounds == reports[kernel].rounds

    def test_auto_kernel_matches_both_explicit_kernels(self):
        graph = random_connected_graph(120, 260, seed=1)
        labels = {
            kernel: LabelPropagation(MeanScaledThreshold(1.0), kernel=kernel).run(graph).labels
            for kernel in ("dict", "csr", "numpy", "auto")
        }
        assert labels["auto"] == labels["dict"] == labels["csr"] == labels["numpy"]


# ----------------------------------------------------------------------
# Fiedler: dict-graph vs CSR-graph input, entry(), warm starts
# ----------------------------------------------------------------------
class TestFiedlerParity:
    def test_dense_solve_bit_identical_for_csr_input(self):
        for seed in range(4):
            graph = random_connected_graph(40, 80, seed=seed)
            solver = FiedlerSolver(method="dense")
            from_dict = solver.solve(graph)
            from_csr = solver.solve(as_csr(graph))
            assert from_dict.order == from_csr.order
            assert from_dict.value == from_csr.value
            assert np.array_equal(from_dict.vector, from_csr.vector)

    def test_sparse_sign_pattern_matches_for_csr_input(self):
        graph = random_connected_graph(80, 200, seed=2)
        solver = FiedlerSolver(method="sparse")
        from_dict = solver.solve(graph)
        from_csr = solver.solve(as_csr(graph))
        assert abs(from_dict.value - from_csr.value) <= 1e-9 * max(1.0, abs(from_dict.value))
        # The Fiedler bipartition (sign pattern, up to a global flip) is
        # what the cut consumes; it must not depend on the input layout.
        signs_dict = np.sign(from_dict.vector)
        signs_csr = np.sign(from_csr.vector)
        assert np.array_equal(signs_dict, signs_csr) or np.array_equal(signs_dict, -signs_csr)

    def test_entry_matches_order_position(self):
        graph = random_connected_graph(30, 60, seed=5)
        result = FiedlerSolver(method="dense").solve(graph)
        for node in result.order:
            assert result.entry(node) == float(result.vector[result.order.index(node)])

    def test_warm_start_agrees_with_cold_solve(self):
        graph = random_connected_graph(80, 200, seed=3)
        for method, rel_tol in (("sparse", 1e-9), ("power", 1e-3), ("lanczos", 1e-3)):
            cold = FiedlerSolver(method=method).solve(graph)
            warm_solver = FiedlerSolver(method=method, warm_start=True)
            warm_solver.solve(graph)
            assert warm_solver.warm_misses == 1
            warm = warm_solver.solve(graph)
            assert warm_solver.warm_hits == 1
            scale = max(abs(cold.value), 1e-12)
            assert abs(warm.value - cold.value) / scale <= rel_tol, method


# ----------------------------------------------------------------------
# Greedy: O(1) incremental evaluator vs from-scratch dict aggregates
# ----------------------------------------------------------------------
@st.composite
def partitioned_app(draw, user_id: str = "u1"):
    """A random call graph pre-sliced into parts, with grid-valued
    weights (multiples of 0.5) so equal objectives are exactly equal."""
    grid = st.integers(1, 60).map(lambda k: k * 0.5)
    n_parts = draw(st.integers(2, 5))
    fcg = FunctionCallGraph("parity")
    fcg.add_function("pin", computation=draw(grid), offloadable=False)
    part_sets: list[set[str]] = []
    fn_index = 0
    for p in range(n_parts):
        members: set[str] = set()
        for _ in range(draw(st.integers(1, 3))):
            name = f"f{fn_index}"
            fn_index += 1
            fcg.add_function(name, computation=draw(grid))
            members.add(name)
        part_sets.append(members)
    for p, members in enumerate(part_sets):
        first = sorted(members)[0]
        if draw(st.booleans()):
            fcg.add_data_flow("pin", first, draw(grid))
        if p > 0:
            fcg.add_data_flow(sorted(part_sets[p - 1])[0], first, draw(grid))
    return PartitionedApplication(user_id, fcg, part_sets)


class TestGreedyEvaluatorParity:
    @given(app=partitioned_app(), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_incremental_moves_match_scratch_rebuild(self, app, seed):
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=15.0, power_compute=1.0, power_transmit=5.0, bandwidth=80.0
            ),
        )
        system = MECSystem(EdgeServer(total_capacity=200.0), [UserContext(device, app.call_graph)])
        weights = ObjectiveWeights()
        apps = {"u1": app}
        all_ids = {part.part_id for part in app.parts}
        evaluator = PlacementEvaluator(system, apps, {"u1": set(all_ids)}, weights)

        def scratch(remote: dict[str, set[int]]) -> float:
            # A fresh evaluator derives its aggregates from the app's
            # dict-walking local/remote/cut-weight methods — the original
            # per-candidate computation the array path replaced.
            return PlacementEvaluator(system, apps, remote, weights).combined()

        rng = random.Random(seed)
        while evaluator.remote["u1"]:
            for user_id, part_id in evaluator.candidates():
                moved = {u: set(parts) for u, parts in evaluator.remote.items()}
                moved[user_id].discard(part_id)
                predicted = evaluator.evaluate_move(user_id, part_id)
                expected = scratch(moved)
                assert abs(predicted - expected) <= 1e-9 * max(1.0, abs(expected))
            evaluator.apply_move("u1", rng.choice(sorted(evaluator.remote["u1"])))
            expected = scratch(evaluator.remote)
            assert abs(evaluator.combined() - expected) <= 1e-9 * max(1.0, abs(expected))


# ----------------------------------------------------------------------
# Greedy: vectorised candidate scan vs per-candidate scalar evaluation
# ----------------------------------------------------------------------
class TestGreedyKernelParity:
    def _evaluator(self, app) -> PlacementEvaluator:
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=15.0, power_compute=1.0, power_transmit=5.0, bandwidth=80.0
            ),
        )
        system = MECSystem(EdgeServer(total_capacity=200.0), [UserContext(device, app.call_graph)])
        all_ids = {part.part_id for part in app.parts}
        return PlacementEvaluator(system, {"u1": app}, {"u1": set(all_ids)}, ObjectiveWeights())

    @given(app=partitioned_app(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_evaluate_moves_matches_scalar_exactly(self, app, seed):
        # The vectorised scan must be bit-identical to the scalar loop —
        # the greedy argmin ties on exact float equality, so "close" is
        # not good enough.  Candidates are shuffled to exercise the
        # per-user grouping logic against arbitrary orderings.
        evaluator = self._evaluator(app)
        rng = random.Random(seed)
        while evaluator.remote["u1"]:
            candidates = list(evaluator.candidates())
            rng.shuffle(candidates)
            batch = evaluator.evaluate_moves(candidates)
            scalar = [evaluator.evaluate_move(user, part) for user, part in candidates]
            assert batch == scalar
            evaluator.apply_move("u1", rng.choice(sorted(evaluator.remote["u1"])))

    @given(app=partitioned_app())
    @settings(max_examples=10, deadline=None)
    def test_evaluate_moves_non_fcfs_fallback_matches_scalar(self, app):
        device = MobileDevice(
            "u1",
            profile=DeviceProfile(
                compute_capacity=15.0, power_compute=1.0, power_transmit=5.0, bandwidth=80.0
            ),
        )
        system = MECSystem(
            EdgeServer(total_capacity=200.0),
            [UserContext(device, app.call_graph)],
            allocation=EqualShareAllocation(),
        )
        all_ids = {part.part_id for part in app.parts}
        evaluator = PlacementEvaluator(
            system, {"u1": app}, {"u1": set(all_ids)}, ObjectiveWeights()
        )
        candidates = list(evaluator.candidates())
        batch = evaluator.evaluate_moves(candidates)
        scalar = [evaluator.evaluate_move(user, part) for user, part in candidates]
        assert batch == scalar

    @given(app=partitioned_app(), exhaustive=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_scheme_parity_python_vs_numpy(self, app, exhaustive):
        results = {}
        for kernel in ("python", "numpy"):
            device = MobileDevice(
                "u1",
                profile=DeviceProfile(
                    compute_capacity=15.0,
                    power_compute=1.0,
                    power_transmit=5.0,
                    bandwidth=80.0,
                ),
            )
            system = MECSystem(
                EdgeServer(total_capacity=200.0), [UserContext(device, app.call_graph)]
            )
            results[kernel] = generate_offloading_scheme(
                system, {"u1": app}, {"u1": []}, exhaustive=exhaustive, kernel=kernel
            )
        python_result, numpy_result = results["python"], results["numpy"]
        assert python_result.scheme.remote_for("u1") == numpy_result.scheme.remote_for("u1")
        assert python_result.history == numpy_result.history
        assert python_result.consumption.energy == numpy_result.consumption.energy
        assert python_result.consumption.time == numpy_result.consumption.time

    def test_full_plans_identical_python_vs_numpy(self):
        profile = dataclasses.replace(
            quick_profile(), distinct_graphs=3, multiuser_graph_size=24, seed=11
        )
        workload = build_mec_system(8, profile, graph_size=24)
        results = {}
        for kernel in ("python", "numpy"):
            planner = make_planner("spectral", PlannerConfig(greedy_kernel=kernel))
            results[kernel] = planner.plan_system(workload.system, workload.call_graphs)
        python_result, numpy_result = results["python"], results["numpy"]
        assert {
            user: plan_digest(plan) for user, plan in python_result.user_plans.items()
        } == {user: plan_digest(plan) for user, plan in numpy_result.user_plans.items()}
        assert python_result.consumption.energy == numpy_result.consumption.energy
        assert python_result.consumption.time == numpy_result.consumption.time


# ----------------------------------------------------------------------
# Service and fleet: process backend vs thread/sequential baselines
# ----------------------------------------------------------------------
class TestExecutorParity:
    def test_plan_service_digests_identical_across_executors(self):
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(6)]
        digests: dict[str, list[str]] = {}
        for executor in ("thread", "process"):
            config = ServiceConfig(workers=2, executor=executor)
            with PlanService(make_planner("spectral"), config) as service:
                responses = [service.plan(graph) for graph in graphs]
            assert all(response.ok for response in responses)
            digests[executor] = [plan_digest(response.plan) for response in responses]
        assert digests["thread"] == digests["process"]

    def test_admit_many_with_process_backend_matches_sequential_admits(self):
        graphs = [_random_call_graph(seed, app_name=f"app{seed}") for seed in range(4)]
        arrivals = [(MobileDevice(f"u{i}"), graphs[i % len(graphs)]) for i in range(12)]

        def build_fleet(backend=None) -> EdgeFleet:
            return EdgeFleet(
                3,
                100.0,
                strategy="spectral",
                routing=make_routing_policy("round-robin", seed=0),
                backend=backend,
            )

        sequential_fleet = build_fleet()
        sequential = [sequential_fleet.admit(device, graph) for device, graph in arrivals]

        backend = PlanningBackend(executor="process", strategy_name="spectral")
        try:
            backend.start()
            batch_fleet = build_fleet(backend=backend)
            batched = batch_fleet.admit_many(arrivals)
        finally:
            backend.close()

        outcome = lambda a: (a.user_id, a.server_id, a.cache_hit, a.degraded)
        assert [outcome(a) for a in sequential] == [outcome(a) for a in batched]
        assert (
            sequential_fleet.total_consumption().combined()
            == batch_fleet.total_consumption().combined()
        )
