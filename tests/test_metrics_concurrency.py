"""Thread-safety hammers for the service metrics and the warm-start cache.

Every test drives real threads through a shared object and asserts an
*exact* expected total afterwards — a lost update (the classic
read-modify-write race these locks exist to prevent) shows up as an
off-by-N, not a flake.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.graphs.generators import grid_graph, path_graph, two_cluster_graph
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.spectral.fiedler import FiedlerSolver

THREADS = 8
ITERATIONS = 2_000


def _hammer(worker, threads: int = THREADS) -> None:
    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(worker, index) for index in range(threads)]
        for future in futures:
            future.result()


class TestCounter:
    def test_concurrent_increments_sum_exactly(self):
        counter = Counter("hits")

        def worker(_index: int) -> None:
            for _ in range(ITERATIONS):
                counter.inc()

        _hammer(worker)
        assert counter.value == THREADS * ITERATIONS

    def test_concurrent_weighted_increments_sum_exactly(self):
        counter = Counter("bytes")

        def worker(index: int) -> None:
            for _ in range(ITERATIONS):
                counter.inc(index + 1)

        _hammer(worker)
        expected = ITERATIONS * sum(range(1, THREADS + 1))
        assert counter.value == expected

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)


class TestGauge:
    def test_concurrent_deltas_cancel_exactly(self):
        gauge = Gauge("depth")

        def worker(_index: int) -> None:
            for _ in range(ITERATIONS):
                gauge.add(1.0)
                gauge.add(-1.0)

        _hammer(worker)
        assert gauge.value == 0.0


class TestHistogram:
    def test_concurrent_observations_exact_count_and_total(self):
        histogram = Histogram("latency", window=64)

        def worker(_index: int) -> None:
            for _ in range(ITERATIONS):
                histogram.observe(2.0)

        _hammer(worker)
        assert histogram.count == THREADS * ITERATIONS
        # mean is exact (total/count), not windowed: identical samples
        # make any interleaving give exactly 2.0 unless an update is lost.
        assert histogram.mean == 2.0

    def test_window_bounds_samples_but_not_count(self):
        histogram = Histogram("latency", window=16)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        # Percentiles only see the most recent 16 samples.
        assert histogram.percentile(0.0) == 84.0
        assert histogram.percentile(1.0) == 99.0


class TestMetricsRegistry:
    def test_get_or_create_returns_one_instance_under_contention(self):
        registry = MetricsRegistry()
        seen: list[Counter] = []

        def worker(_index: int) -> None:
            counter = registry.counter("shared")
            seen.append(counter)
            for _ in range(ITERATIONS):
                counter.inc()

        _hammer(worker)
        assert len({id(counter) for counter in seen}) == 1
        assert registry.counter("shared").value == THREADS * ITERATIONS

    def test_concurrent_mixed_metric_creation(self):
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for i in range(200):
                registry.counter(f"c{i % 10}").inc()
                registry.gauge(f"g{i % 10}").set(float(index))
                registry.histogram(f"h{i % 10}").observe(1.0)

        _hammer(worker)
        snap = registry.snapshot()
        assert len(snap["counters"]) == 10
        assert len(snap["gauges"]) == 10
        assert len(snap["histograms"]) == 10
        assert sum(snap["counters"].values()) == THREADS * 200
        assert sum(s["count"] for s in snap["histograms"].values()) == THREADS * 200


class TestFiedlerWarmStartConcurrency:
    def test_warm_cache_survives_concurrent_solves(self):
        """Regression: concurrent solve() calls share the warm cache safely.

        Hit/miss counters are incremented under ``_warm_lock``; if any
        update were lost (or the OrderedDict corrupted), the exact
        bookkeeping below would not balance.
        """
        solver = FiedlerSolver(warm_start=True, method="lanczos")
        graphs = [path_graph(24), grid_graph(5, 5), two_cluster_graph(8, 8)]
        rounds = 12

        def worker(index: int):
            results = []
            for round_index in range(rounds):
                graph = graphs[(index + round_index) % len(graphs)]
                results.append(solver.solve(graph))
            return results

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [pool.submit(worker, index) for index in range(THREADS)]
            all_results = [future.result() for future in futures]

        total_solves = THREADS * rounds
        assert solver.warm_hits + solver.warm_misses == total_solves
        # Three distinct structures; everything after the first encounters
        # is a hit, so at most one miss per (structure, in-flight overlap).
        assert solver.warm_hits > 0
        assert len(solver._warm_cache) == len(graphs)
        # The eigenvalue itself must stay correct under warm starts.
        for results in all_results:
            for result in results:
                assert result.value >= 0.0
                assert np.isfinite(result.vector).all()

    def test_warm_start_results_match_cold_results(self):
        graph = two_cluster_graph(10, 10)
        cold = FiedlerSolver(method="lanczos").solve(graph)
        warm_solver = FiedlerSolver(warm_start=True, method="lanczos")
        warm_solver.solve(graph)
        warm = warm_solver.solve(graph)  # second solve uses the cached vector
        assert warm_solver.warm_hits == 1
        assert warm.value == pytest.approx(cold.value, rel=1e-6)

    def test_warm_cache_lru_eviction_bounded(self):
        solver = FiedlerSolver(warm_start=True, method="lanczos", warm_cache_size=2)
        for n in (8, 10, 12, 14):
            solver.solve(path_graph(n))
        assert len(solver._warm_cache) == 2
