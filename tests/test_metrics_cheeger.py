"""Tests for graph metrics, conductance and the Cheeger machinery."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.generators import (
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
    two_cluster_graph,
)
from repro.graphs.metrics import (
    average_clustering,
    average_degree,
    clustering_coefficient,
    conductance,
    degree_histogram,
    density,
    edge_weight_summary,
    node_weight_summary,
    volume,
    WeightSummary,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.cheeger import cheeger_bounds, normalized_lambda2, sweep_cut
from tests.test_properties_graphs import weighted_graphs


class TestMetrics:
    def test_density(self):
        assert density(path_graph(4)) == pytest.approx(3 / 6)
        complete = random_connected_graph(5, 10, seed=1)
        assert density(complete) == pytest.approx(1.0)
        assert density(WeightedGraph()) == 0.0

    def test_average_degree(self):
        assert average_degree(path_graph(4)) == pytest.approx(1.5)
        assert average_degree(star_graph(5)) == pytest.approx(10 / 6)

    def test_degree_histogram(self):
        assert degree_histogram(star_graph(4)) == {4: 1, 1: 4}
        assert degree_histogram(path_graph(3)) == {1: 2, 2: 1}

    def test_weight_summary(self):
        summary = WeightSummary.of([3.0, 1.0, 2.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == 2.5
        assert summary.median == 2.5
        empty = WeightSummary.of([])
        assert empty.count == 0 and empty.total == 0.0

    def test_edge_and_node_summaries(self, triangle):
        edges = edge_weight_summary(triangle)
        assert edges.count == 3
        assert edges.total == 6.0
        nodes = node_weight_summary(triangle)
        assert nodes.maximum == 3.0

    def test_clustering_coefficient(self, triangle):
        assert clustering_coefficient(triangle, "a") == 1.0
        assert clustering_coefficient(path_graph(3), 1) == 0.0
        assert average_clustering(triangle) == 1.0
        # Grid has no triangles.
        assert average_clustering(grid_graph(3, 3)) == 0.0

    def test_volume_and_conductance(self):
        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.0)
        left = set(range(4))
        # vol(left) = 4 nodes * 3 intra edges * 10 each... computed directly:
        assert volume(g, left) == pytest.approx(sum(g.weighted_degree(n) for n in left))
        phi = conductance(g, left)
        assert phi == pytest.approx(1.0 / volume(g, left))

    def test_conductance_needs_proper_bipartition(self, triangle):
        with pytest.raises(ValueError):
            conductance(triangle, set())
        with pytest.raises(ValueError):
            conductance(triangle, {"a", "b", "c"})


class TestCheeger:
    def test_normalized_lambda2_range(self):
        for seed in range(3):
            g = random_connected_graph(12, 22, seed=seed)
            lam = normalized_lambda2(g)
            assert 0.0 <= lam <= 2.0 + 1e-9

    def test_sweep_cut_finds_cluster_boundary(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=0.5)
        phi, side = sweep_cut(g)
        assert side in (set(range(5)), set(range(5, 10)))
        assert phi == pytest.approx(conductance(g, side))

    def test_sweep_cut_small_graph_rejected(self):
        g = WeightedGraph()
        g.add_node("only")
        with pytest.raises(ValueError):
            sweep_cut(g)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cheeger_inequality_random_graphs(self, seed):
        g = random_connected_graph(14, 28, seed=seed)
        lower, phi, upper = cheeger_bounds(g)
        assert lower - 1e-9 <= phi <= upper + 1e-9

    @given(weighted_graphs(min_nodes=3))
    @settings(max_examples=30, deadline=None)
    def test_cheeger_inequality_property(self, graph):
        from repro.graphs.components import is_connected

        if not is_connected(graph):
            return
        lower, phi, upper = cheeger_bounds(graph)
        assert phi <= upper + 1e-7
        assert phi >= lower - 1e-7

    def test_sweep_conductance_beats_or_ties_sign_split_sometimes(self):
        """The sweep optimises conductance directly, so it can never be
        worse than the sign split's prefix at the zero threshold."""
        g = random_connected_graph(20, 45, seed=5)
        phi_sweep, _ = sweep_cut(g)
        from repro.spectral.bisection import spectral_bisect

        sign = spectral_bisect(g)
        phi_sign = conductance(g, sign.part_one)
        assert phi_sweep <= phi_sign + 1e-9

    def test_path_cheeger_values(self):
        # For long paths lambda_2 -> 0 and the sweep finds the middle cut.
        g = path_graph(20)
        lower, phi, upper = cheeger_bounds(g)
        assert phi < 0.2
        assert lower <= phi <= upper
