"""Tests for the claims ledger."""

import pytest

from repro.experiments.claims import CLAIMS, ClaimResult, verify_claims
from repro.workloads.profiles import ExperimentProfile

TINY = ExperimentProfile(
    name="tiny",
    graph_sizes=(100, 250),
    user_counts=(2, 4),
    multiuser_graph_size=80,
    distinct_graphs=2,
)


class TestLedgerStructure:
    def test_claims_catalogue_is_well_formed(self):
        ids = [claim_id for claim_id, _, _ in CLAIMS]
        assert len(ids) == len(set(ids)), "duplicate claim ids"
        assert len(CLAIMS) == 8
        for claim_id, statement, check in CLAIMS:
            assert claim_id and statement
            assert callable(check)

    def test_ledger_runs_on_tiny_profile(self):
        ledger = verify_claims(
            TINY,
            single_user_repetitions=1,
            multiuser_repetitions=1,
            timing_repeats=1,
        )
        assert len(ledger) == len(CLAIMS)
        for result in ledger:
            assert isinstance(result, ClaimResult)
            assert result.detail  # every verdict carries evidence
        # Structural claims must hold even at tiny scales; the statistical
        # ordering claims need the quick profile's sizes and repetitions
        # (the bench suite checks those) and are not asserted here.
        by_id = {r.claim_id: r for r in ledger}
        assert by_id["table1-reduction"].passed
        assert by_id["fig3-5-growth"].passed


class TestClaimPredicates:
    """Unit-test the predicates against synthetic measurements."""

    def make_energy_rows(self, totals: dict[tuple[str, int], float]):
        from repro.experiments.figures import EnergyRow

        return [
            EnergyRow(
                algorithm=algorithm,
                scale=scale,
                local_energy=value * 0.8,
                transmission_energy=value * 0.2,
                total_energy=value,
                total_time=value,
                offloaded_functions=1,
            )
            for (algorithm, scale), value in totals.items()
        ]

    def test_ours_best_total_predicate(self):
        from repro.experiments.claims import _Measurements, _claim_ours_best_total_single

        rows = self.make_energy_rows(
            {
                ("spectral", 100): 1.0,
                ("maxflow", 100): 2.0,
                ("kl", 100): 3.0,
                ("spectral", 200): 2.0,
                ("maxflow", 200): 4.0,
                ("kl", 200): 5.0,
            }
        )
        m = _Measurements(table1=[], single_user=rows, multi_user=[], timing=[])
        passed, _ = _claim_ours_best_total_single(m)
        assert passed

        losing = self.make_energy_rows(
            {
                ("spectral", 100): 9.0,
                ("maxflow", 100): 2.0,
                ("kl", 100): 3.0,
                ("spectral", 200): 9.0,
                ("maxflow", 200): 4.0,
                ("kl", 200): 5.0,
            }
        )
        m = _Measurements(table1=[], single_user=losing, multi_user=[], timing=[])
        passed, _ = _claim_ours_best_total_single(m)
        assert not passed

    def test_spark_gap_predicate(self):
        from repro.experiments.claims import _Measurements, _claim_spark_closes_gap
        from repro.experiments.timing import TimingRow

        timing = [
            TimingRow("spectral-power", 100, 10.0, 1),
            TimingRow("maxflow", 100, 1.0, 1),
            TimingRow("kl", 100, 1.2, 1),
            TimingRow("spectral-spark", 100, 2.0, 1),
        ]
        m = _Measurements(table1=[], single_user=[], multi_user=[], timing=timing)
        passed, detail = _claim_spark_closes_gap(m)
        assert passed
        assert "10.00s -> 2.00s" in detail

        timing[-1] = TimingRow("spectral-spark", 100, 9.0, 1)
        passed, _ = _claim_spark_closes_gap(m)
        assert not passed
