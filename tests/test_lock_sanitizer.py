"""Tests for the runtime lock sanitizer (``repro.analysis.runtime``).

The deliberate-inversion fixtures build ``_SanitizedLock`` wrappers
directly against a private :class:`LockSanitizer` instance instead of
going through the patched ``threading.Lock`` factory.  When the whole
suite runs under ``REPRO_LOCK_SANITIZER=1`` the factory is already the
*session* sanitizer's — and a seeded inversion recorded there would
fail the session gate, which is exactly what these tests must not do.
Factory patching itself is covered with an order-consistent scenario.
"""

from __future__ import annotations

import _thread
import json
import threading
import time

from repro.analysis.runtime import LockSanitizer, install_from_env
from repro.analysis.runtime.sanitizer import _SanitizedLock, report_path_from_env


def _lock(sanitizer: LockSanitizer) -> _SanitizedLock:
    return _SanitizedLock(sanitizer, _thread.allocate_lock())


def _run_in_thread(target, name: str) -> None:
    worker = threading.Thread(target=target, name=name)
    worker.start()
    worker.join()


class TestInversionDetection:
    def test_reversed_order_across_threads_is_caught(self):
        sanitizer = LockSanitizer()
        lock_a, lock_b = _lock(sanitizer), _lock(sanitizer)

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        # Sequential, joined threads: the two orders never overlap in
        # time, yet the interleaving that deadlocks exists — the
        # sanitizer must flag it deterministically.
        _run_in_thread(forward, "forward-thread")
        _run_in_thread(backward, "backward-thread")

        assert not sanitizer.clean
        assert len(sanitizer.inversions) == 1
        inversion = sanitizer.inversions[0]
        assert inversion.first.thread == "forward-thread"
        assert inversion.second.thread == "backward-thread"
        assert {inversion.first.outer, inversion.first.inner} == {
            inversion.second.outer,
            inversion.second.inner,
        }
        assert inversion.first.outer == inversion.second.inner

    def test_inversion_reported_once_per_pair(self):
        sanitizer = LockSanitizer()
        lock_a, lock_b = _lock(sanitizer), _lock(sanitizer)

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        for _ in range(3):
            _run_in_thread(forward, "forward-thread")
            _run_in_thread(backward, "backward-thread")
        assert len(sanitizer.inversions) == 1

    def test_consistent_order_stays_clean(self):
        sanitizer = LockSanitizer()
        lock_a, lock_b = _lock(sanitizer), _lock(sanitizer)

        def nested():
            with lock_a:
                with lock_b:
                    pass

        _run_in_thread(nested, "worker-1")
        _run_in_thread(nested, "worker-2")
        assert sanitizer.clean
        assert sanitizer.report()["orders_observed"] == 1

    def test_reentrant_rlock_does_not_self_pair(self):
        sanitizer = LockSanitizer()
        rlock = _SanitizedLock(sanitizer, threading.RLock())

        with rlock:
            with rlock:
                pass
        assert sanitizer.clean
        assert sanitizer.report()["orders_observed"] == 0


class TestHoldBudget:
    def test_overrun_is_recorded_but_not_gating(self):
        sanitizer = LockSanitizer(hold_budget_seconds=0.02)
        lock = _lock(sanitizer)
        with lock:
            time.sleep(0.05)
        assert len(sanitizer.long_holds) == 1
        hold = sanitizer.long_holds[0]
        assert hold.seconds >= 0.02
        assert sanitizer.clean  # long holds are informational

    def test_condition_wait_does_not_count_as_hold(self):
        sanitizer = LockSanitizer(hold_budget_seconds=0.02)
        lock = _lock(sanitizer)
        condition = threading.Condition(lock)
        with condition:
            # wait() releases the lock for the whole sleep; only the
            # instants around the wait count against the budget.
            condition.wait(timeout=0.08)
        assert sanitizer.long_holds == []
        assert sanitizer.clean


class TestFactoryPatching:
    def test_install_instruments_new_locks_and_uninstall_restores(self):
        sanitizer = LockSanitizer()
        original_factory = threading.Lock
        sanitizer.install()
        try:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            assert isinstance(lock_a, _SanitizedLock)

            def nested():
                with lock_a:
                    with lock_b:
                        pass

            _run_in_thread(nested, "patched-worker")
            assert sanitizer.report()["orders_observed"] == 1
        finally:
            sanitizer.uninstall()
        assert threading.Lock is original_factory
        # Wrappers created while installed keep working after uninstall.
        with lock_a:
            assert lock_a.locked()

    def test_queue_locks_are_instrumented(self):
        import queue

        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            channel = queue.Queue()
        finally:
            sanitizer.uninstall()
        channel.put("item")
        assert channel.get() == "item"
        assert sanitizer.next_serial() > 1  # Queue built sanitized locks


class TestReporting:
    def test_report_schema_and_write(self, tmp_path):
        sanitizer = LockSanitizer()
        lock_a, lock_b = _lock(sanitizer), _lock(sanitizer)

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        _run_in_thread(forward, "forward-thread")
        _run_in_thread(backward, "backward-thread")

        path = tmp_path / "lock-sanitizer-report.json"
        sanitizer.write_report(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["orders_observed"] == 2
        assert payload["hold_budget_seconds"] == 1.0
        (inversion,) = payload["inversions"]
        assert set(inversion) == {"first", "second"}
        assert set(inversion["first"]) == {"outer", "inner", "thread"}
        assert payload["long_holds"] == []

    def test_labels_carry_creation_site_and_serial(self):
        sanitizer = LockSanitizer()
        lock = _lock(sanitizer)
        assert __file__ in lock._label
        assert "#" in lock._label

    def test_install_from_env_respects_flag(self, monkeypatch):
        import repro.analysis.runtime.sanitizer as module

        monkeypatch.setattr(module, "_ACTIVE", None)
        monkeypatch.delenv("REPRO_LOCK_SANITIZER", raising=False)
        assert install_from_env() is None

    def test_report_path_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_SANITIZER_REPORT", raising=False)
        assert report_path_from_env().name == "lock-sanitizer-report.json"
        monkeypatch.setenv("REPRO_LOCK_SANITIZER_REPORT", "custom.json")
        assert report_path_from_env().name == "custom.json"
