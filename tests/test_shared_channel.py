"""Tests for the shared-uplink (fair-share channel) simulation mode."""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import BandwidthChange, simulate_scheme

PROFILE = DeviceProfile(
    compute_capacity=10.0, power_compute=2.0, power_transmit=5.0, bandwidth=20.0
)


def build(users_spec: dict[str, tuple[float, float, float]], capacity=1000.0):
    """users_spec: uid -> (local, remote, cut)."""
    contexts, apps = [], {}
    for uid, (local, remote, cut) in users_spec.items():
        fcg = FunctionCallGraph(uid)
        fcg.add_function("pin", computation=local, offloadable=False)
        fcg.add_function("ship", computation=remote)
        if cut > 0:
            fcg.add_data_flow("pin", "ship", cut)
        apps[uid] = PartitionedApplication(uid, fcg, [{"ship"}])
        contexts.append(UserContext(MobileDevice(uid, profile=PROFILE), fcg))
    system = MECSystem(EdgeServer(capacity), contexts)
    placement = {uid: {0} for uid in users_spec}
    return system, apps, placement


class TestSharedChannel:
    def test_single_user_gets_full_channel(self):
        system, apps, placement = build({"u1": (10.0, 50.0, 30.0)})
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=15.0
        )
        # 30 data units at 15/s = 2 seconds.
        assert report.timeline("u1").upload_finish == pytest.approx(2.0)

    def test_equal_uploads_split_channel(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # Both stream at 10/s throughout: each finishes at 3.0s.
        assert report.timeline("u1").upload_finish == pytest.approx(3.0)
        assert report.timeline("u2").upload_finish == pytest.approx(3.0)

    def test_short_upload_frees_capacity_for_long_one(self):
        spec = {"u1": (1.0, 50.0, 10.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # Phase 1: both at 10/s; u1 done at t=1 (10 units).
        assert report.timeline("u1").upload_finish == pytest.approx(1.0)
        # u2 sent 10 by t=1, then streams the remaining 20 at 20/s -> t=2.
        assert report.timeline("u2").upload_finish == pytest.approx(2.0)

    def test_contention_slower_than_private_links(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        private = simulate_scheme(system, apps, placement)
        shared = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=PROFILE.bandwidth
        )
        for uid in spec:
            assert (
                shared.timeline(uid).upload_finish
                >= private.timeline(uid).upload_finish - 1e-9
            )

    def test_transmission_energy_scales_with_airtime(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # 3 seconds of airtime at p_t = 5 W.
        assert report.timeline("u1").transmission_energy == pytest.approx(15.0)

    def test_bandwidth_fault_in_shared_mode(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system,
            apps,
            placement,
            faults=[BandwidthChange(time=1.0, user_id="u1", factor=0.5)],
            shared_uplink_capacity=20.0,
        )
        t1 = report.timeline("u1")
        t2 = report.timeline("u2")
        # u1: 10 units by t=1, then at 5/s (half its 10/s share).
        # u2 keeps its 10/s share until done at t=3 (30 units).
        assert t2.upload_finish == pytest.approx(3.0)
        # u1: 10 + 2s*5 = 20 by t=3; then alone: share 20/s * 0.5 = 10/s
        # for the last 10 units -> t=4.
        assert t1.upload_finish == pytest.approx(4.0)

    def test_invalid_capacity_rejected(self):
        system, apps, placement = build({"u1": (1.0, 5.0, 2.0)})
        with pytest.raises(ValueError, match="shared_uplink_capacity"):
            simulate_scheme(system, apps, placement, shared_uplink_capacity=0.0)

    def test_queueing_order_reflects_contention(self):
        """Contention reorders server arrivals vs the private-link case."""
        spec = {"u1": (1.0, 100.0, 28.0), "u2": (1.0, 100.0, 30.0)}
        system, apps, placement = build(spec, capacity=10.0)
        shared = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # u1 (28 units) finishes upload before u2 (30) and is served first.
        assert shared.timeline("u1").service_start < shared.timeline("u2").service_start

    def test_share_capped_at_device_bandwidth(self):
        """Regression: a generous shared channel cannot outrun the device link.

        The fair share used to be ``capacity / n`` with no cap, so a slow
        handset on a fat channel uploaded impossibly fast (30 units in
        0.03 s on a 20/s radio).
        """
        system, apps, placement = build({"u1": (1.0, 50.0, 30.0)})
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=1000.0
        )
        # 30 units at the device's own 20/s, not at the channel's 1000/s.
        assert report.timeline("u1").upload_finish == pytest.approx(1.5)

    def test_share_capped_per_user_under_contention(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=100.0
        )
        # Fair share is 50/s each but both radios top out at 20/s: the
        # shared channel behaves exactly like private links.
        assert report.timeline("u1").upload_finish == pytest.approx(1.5)
        assert report.timeline("u2").upload_finish == pytest.approx(1.5)

    def test_stalled_upload_frees_its_share(self):
        """Regression: a factor-0 upload must not hold a fair-share slot.

        A stalled user used to stay in the denominator forever, pinning
        the survivor at ``capacity / 2`` while moving no data itself.
        """
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system,
            apps,
            placement,
            faults=[BandwidthChange(time=1.0, user_id="u1", factor=0.0)],
            shared_uplink_capacity=20.0,
        )
        # Both at 10/s until t=1 (10 units each); u1 stalls, so u2 gets
        # the whole channel (capped at its own 20/s link) and finishes
        # its remaining 20 units at t=2 — not t=3 as under the old
        # always-counted denominator.
        assert report.timeline("u2").upload_finish == pytest.approx(2.0)
        # The stalled upload never completes and never reaches the server.
        assert report.timeline("u1").upload_finish == 0.0
        assert report.timeline("u1").service_start == 0.0
        # The run still terminates with a finite makespan.
        assert report.makespan < float("inf")

    def test_stalled_upload_resumes_on_recovery(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system,
            apps,
            placement,
            faults=[
                BandwidthChange(time=1.0, user_id="u1", factor=0.0),
                BandwidthChange(time=5.0, user_id="u1", factor=1.0),
            ],
            shared_uplink_capacity=20.0,
        )
        # u2 unaffected by the stall: full channel from t=1, done at t=2.
        assert report.timeline("u2").upload_finish == pytest.approx(2.0)
        # u1 sent 10 units before stalling; on recovery at t=5 it has the
        # channel to itself (capped at 20/s) -> 20 remaining units, t=6.
        assert report.timeline("u1").upload_finish == pytest.approx(6.0)
