"""Tests for the shared-uplink (fair-share channel) simulation mode."""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import BandwidthChange, simulate_scheme

PROFILE = DeviceProfile(
    compute_capacity=10.0, power_compute=2.0, power_transmit=5.0, bandwidth=20.0
)


def build(users_spec: dict[str, tuple[float, float, float]], capacity=1000.0):
    """users_spec: uid -> (local, remote, cut)."""
    contexts, apps = [], {}
    for uid, (local, remote, cut) in users_spec.items():
        fcg = FunctionCallGraph(uid)
        fcg.add_function("pin", computation=local, offloadable=False)
        fcg.add_function("ship", computation=remote)
        if cut > 0:
            fcg.add_data_flow("pin", "ship", cut)
        apps[uid] = PartitionedApplication(uid, fcg, [{"ship"}])
        contexts.append(UserContext(MobileDevice(uid, profile=PROFILE), fcg))
    system = MECSystem(EdgeServer(capacity), contexts)
    placement = {uid: {0} for uid in users_spec}
    return system, apps, placement


class TestSharedChannel:
    def test_single_user_gets_full_channel(self):
        system, apps, placement = build({"u1": (10.0, 50.0, 30.0)})
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=15.0
        )
        # 30 data units at 15/s = 2 seconds.
        assert report.timeline("u1").upload_finish == pytest.approx(2.0)

    def test_equal_uploads_split_channel(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # Both stream at 10/s throughout: each finishes at 3.0s.
        assert report.timeline("u1").upload_finish == pytest.approx(3.0)
        assert report.timeline("u2").upload_finish == pytest.approx(3.0)

    def test_short_upload_frees_capacity_for_long_one(self):
        spec = {"u1": (1.0, 50.0, 10.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # Phase 1: both at 10/s; u1 done at t=1 (10 units).
        assert report.timeline("u1").upload_finish == pytest.approx(1.0)
        # u2 sent 10 by t=1, then streams the remaining 20 at 20/s -> t=2.
        assert report.timeline("u2").upload_finish == pytest.approx(2.0)

    def test_contention_slower_than_private_links(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        private = simulate_scheme(system, apps, placement)
        shared = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=PROFILE.bandwidth
        )
        for uid in spec:
            assert (
                shared.timeline(uid).upload_finish
                >= private.timeline(uid).upload_finish - 1e-9
            )

    def test_transmission_energy_scales_with_airtime(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # 3 seconds of airtime at p_t = 5 W.
        assert report.timeline("u1").transmission_energy == pytest.approx(15.0)

    def test_bandwidth_fault_in_shared_mode(self):
        spec = {"u1": (1.0, 50.0, 30.0), "u2": (1.0, 50.0, 30.0)}
        system, apps, placement = build(spec)
        report = simulate_scheme(
            system,
            apps,
            placement,
            faults=[BandwidthChange(time=1.0, user_id="u1", factor=0.5)],
            shared_uplink_capacity=20.0,
        )
        t1 = report.timeline("u1")
        t2 = report.timeline("u2")
        # u1: 10 units by t=1, then at 5/s (half its 10/s share).
        # u2 keeps its 10/s share until done at t=3 (30 units).
        assert t2.upload_finish == pytest.approx(3.0)
        # u1: 10 + 2s*5 = 20 by t=3; then alone: share 20/s * 0.5 = 10/s
        # for the last 10 units -> t=4.
        assert t1.upload_finish == pytest.approx(4.0)

    def test_invalid_capacity_rejected(self):
        system, apps, placement = build({"u1": (1.0, 5.0, 2.0)})
        with pytest.raises(ValueError, match="shared_uplink_capacity"):
            simulate_scheme(system, apps, placement, shared_uplink_capacity=0.0)

    def test_queueing_order_reflects_contention(self):
        """Contention reorders server arrivals vs the private-link case."""
        spec = {"u1": (1.0, 100.0, 28.0), "u2": (1.0, 100.0, 30.0)}
        system, apps, placement = build(spec, capacity=10.0)
        shared = simulate_scheme(
            system, apps, placement, shared_uplink_capacity=20.0
        )
        # u1 (28 units) finishes upload before u2 (30) and is served first.
        assert shared.timeline("u1").service_start < shared.timeline("u2").service_start
