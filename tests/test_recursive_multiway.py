"""Tests for recursive spectral partitioning and the multiway planner mode."""

import pytest

from repro.core.baselines import make_planner, spectral_cut_strategy
from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.spectral.recursive import recursive_spectral_partition
from repro.workloads.applications import call_graph_from_weighted_graph, synthesize_application
from repro.workloads.netgen import NetgenConfig, netgen_graph


def four_cluster_graph() -> WeightedGraph:
    """Four dense clusters chained by light bridges."""
    g = WeightedGraph()
    for i in range(16):
        g.add_node(i, weight=1.0)
    for base in range(0, 16, 4):
        members = range(base, base + 4)
        for i in members:
            for j in members:
                if i < j:
                    g.add_edge(i, j, weight=10.0)
    for bridge in (3, 7, 11):
        g.add_edge(bridge, bridge + 1, weight=0.5)
    return g


class TestRecursivePartition:
    def test_parts_partition_nodes(self):
        g = random_connected_graph(20, 40, seed=1)
        result = recursive_spectral_partition(g, max_parts=4)
        covered: set = set()
        for part in result.parts:
            assert part
            assert not covered & part
            covered |= part
        assert covered == set(g.nodes())

    def test_respects_max_parts(self):
        g = random_connected_graph(30, 60, seed=2)
        for k in (1, 2, 3, 6):
            result = recursive_spectral_partition(g, max_parts=k, max_cut_ratio=100.0)
            assert len(result.parts) <= k

    def test_finds_four_clusters(self):
        g = four_cluster_graph()
        result = recursive_spectral_partition(g, max_parts=4, max_cut_ratio=10.0)
        expected = {frozenset(range(b, b + 4)) for b in range(0, 16, 4)}
        assert {frozenset(p) for p in result.parts} == expected
        assert result.cut_total == pytest.approx(3 * 0.5)

    def test_cut_ratio_guard_blocks_expensive_splits(self):
        # A clique: any split is expensive relative to its weight.
        g = random_connected_graph(8, 28, seed=3, edge_weight_range=(50.0, 60.0))
        result = recursive_spectral_partition(g, max_parts=8, max_cut_ratio=0.01)
        assert len(result.parts) == 1
        assert result.rejected_splits >= 1

    def test_min_part_size_respected(self):
        g = path_graph(10)
        result = recursive_spectral_partition(g, max_parts=10, min_part_size=3)
        assert all(len(p) >= 3 or len(result.parts) == 1 for p in result.parts)

    def test_cut_total_matches_boundaries(self):
        g = random_connected_graph(18, 36, seed=4)
        result = recursive_spectral_partition(g, max_parts=4, max_cut_ratio=100.0)
        # Total cut equals half the sum of per-part boundaries.
        boundary_sum = sum(g.cut_weight(p) for p in result.parts)
        assert result.cut_total == pytest.approx(boundary_sum / 2.0)

    def test_invalid_arguments(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            recursive_spectral_partition(g, max_parts=0)
        with pytest.raises(ValueError):
            recursive_spectral_partition(g, min_part_size=0)
        with pytest.raises(ValueError):
            recursive_spectral_partition(g, max_cut_ratio=-0.5)

    def test_split_tree_recorded(self):
        g = four_cluster_graph()
        result = recursive_spectral_partition(g, max_parts=4, max_cut_ratio=10.0)
        assert len(result.split_tree) == result.splits == 3


class TestMultiwayPlanner:
    def make_planner(self, k: int) -> OffloadingPlanner:
        config = PlannerConfig(multiway_parts=k)
        return OffloadingPlanner(
            spectral_cut_strategy(), config=config, strategy_name=f"spectral-{k}way"
        )

    def test_multiway_produces_more_parts(self):
        g = netgen_graph(NetgenConfig(n_nodes=120, n_edges=500, seed=5))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=5)
        two_way = make_planner("spectral").plan_user(app)
        four_way = self.make_planner(4).plan_user(app)
        assert len(four_way.parts) >= len(two_way.parts)

    def test_multiway_parts_cover_functions(self):
        app = synthesize_application("mw", n_functions=50, seed=6)
        plan = self.make_planner(4).plan_user(app)
        covered = set().union(*plan.parts) if plan.parts else set()
        assert covered == set(app.offloadable_functions())

    def test_multiway_never_worse_on_combined_objective(self):
        """Finer granularity can only help the greedy (it may always
        reproduce the coarse placement)."""
        g = netgen_graph(NetgenConfig(n_nodes=120, n_edges=500, seed=7))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=7)
        profile = DeviceProfile(
            compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
        )
        device = MobileDevice("u1", profile=profile)
        system = MECSystem(EdgeServer(300.0), [UserContext(device, app)])

        coarse = make_planner("spectral").plan_system(system, {"u1": app})
        fine = self.make_planner(6).plan_system(system, {"u1": app})
        # Not strictly guaranteed (greedy is a heuristic), so allow a
        # small tolerance — but the fine plan must land in the same league.
        assert fine.consumption.combined() <= coarse.consumption.combined() * 1.05

    def test_bisections_start_fully_remote(self):
        app = synthesize_application("mw", n_functions=40, seed=8)
        plan = self.make_planner(4).plan_user(app)
        for side_one, side_two in plan.bisections:
            if side_two and not side_one:
                continue  # multiway group: (empty, all parts)
            # Remaining entries are small components below min_cut_size.
            assert len(side_one | side_two) <= 1
