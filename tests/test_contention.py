"""Tests for the shared-channel contention model and best-response game.

Covers the channel math (``b_i(n)``), the single-user parity guarantee
(a lone offloader on an ample channel is bit-identical to the paper's
constant-``b`` model), the greedy's contention fixed point, the
decentralized best-response baseline, planner/simulator agreement on
upload times, channel threading through the fleet, and the experiment
sweep plus its CLI front-end.
"""

import dataclasses

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.fleet import EdgeFleet
from repro.mec.channel import (
    ChannelQuality,
    SharedChannel,
    make_quality_profile,
)
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.game import best_response_equilibrium, solo_offload_set
from repro.mec.greedy import generate_offloading_scheme
from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import simulate_scheme

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def make_app(user_id: str) -> tuple[FunctionCallGraph, PartitionedApplication]:
    """Call graph with one pinned anchor and two offloadable parts."""
    fcg = FunctionCallGraph(user_id)
    fcg.add_function("main", computation=5.0, offloadable=False)
    fcg.add_function("a", computation=40.0)
    fcg.add_function("b", computation=30.0)
    fcg.add_function("c", computation=60.0)
    fcg.add_function("d", computation=20.0)
    fcg.add_data_flow("main", "a", 4.0)
    fcg.add_data_flow("a", "b", 12.0)
    fcg.add_data_flow("b", "c", 2.0)
    fcg.add_data_flow("c", "d", 15.0)
    app = PartitionedApplication(user_id, fcg, [{"a", "b"}, {"c", "d"}])
    return fcg, app


def make_system(
    n_users: int,
    channel: SharedChannel | None = None,
    server_capacity: float = 300.0,
) -> tuple[MECSystem, dict, dict]:
    """System + apps + bisections for ``n_users`` identical users."""
    users, apps, bisections = [], {}, {}
    for k in range(n_users):
        uid = f"u{k + 1}"
        fcg, app = make_app(uid)
        users.append(UserContext(MobileDevice(uid, profile=PROFILE), fcg))
        apps[uid] = app
        bisections[uid] = [({0}, {1})]
    system = MECSystem(
        EdgeServer(total_capacity=server_capacity), users, channel=channel
    )
    return system, apps, bisections


class TestChannelMath:
    def test_rate_splits_equally(self):
        ch = SharedChannel(capacity=100.0)
        assert ch.rate_for("u1", 4, device_bandwidth=70.0) == pytest.approx(25.0)

    def test_rate_capped_at_device_bandwidth(self):
        ch = SharedChannel(capacity=1000.0)
        assert ch.rate_for("u1", 2, device_bandwidth=70.0) == 70.0

    def test_default_efficiency_is_exactly_one(self):
        # No float round-trip through log2: the parity guarantee rests
        # on absent users getting *exactly* 1.0.
        ch = SharedChannel(capacity=100.0)
        assert ch.efficiency_for("absent") == 1.0

    def test_better_snr_earns_higher_rate(self):
        ch = SharedChannel(
            capacity=100.0, quality={"u1": ChannelQuality(gain=3.0)}
        )
        assert ch.rate_for("u1", 2, 1000.0) > ch.rate_for("u2", 2, 1000.0)

    def test_planning_rates_use_active_population(self):
        ch = SharedChannel(capacity=100.0)
        bandwidths = {"u1": 70.0, "u2": 70.0, "u3": 70.0}
        rates = ch.planning_rates(bandwidths, active=["u1", "u2"])
        # Everyone is priced at n=2, including the inactive u3.
        assert rates == {uid: pytest.approx(50.0) for uid in bandwidths}

    def test_empty_active_set_prices_at_n_one(self):
        ch = SharedChannel(capacity=100.0)
        assert ch.planning_rates({"u1": 70.0}, active=[]) == {"u1": 70.0}

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SharedChannel(capacity=0.0)
        with pytest.raises(ValueError, match="access"):
            SharedChannel(capacity=10.0, access="csma")
        with pytest.raises(ValueError, match="planning_rounds"):
            SharedChannel(capacity=10.0, planning_rounds=0)
        with pytest.raises(ValueError, match="gain"):
            ChannelQuality(gain=-1.0)

    def test_quality_profile_deterministic(self):
        ids = ["u1", "u2", "u3"]
        first = make_quality_profile(ids, spread=0.3, seed=7)
        second = make_quality_profile(list(reversed(ids)), spread=0.3, seed=7)
        assert first == second
        for quality in first.values():
            assert 0.7 <= quality.gain <= 1.3

    def test_quality_profile_zero_spread_is_empty(self):
        # The parity regime: no overrides at all, so efficiency_for
        # short-circuits to exactly 1.0 for every user.
        assert make_quality_profile(["u1", "u2"], spread=0.0) == {}

    def test_quality_profile_invalid_spread(self):
        with pytest.raises(ValueError, match="spread"):
            make_quality_profile(["u1"], spread=1.0)


class TestSingleUserParity:
    """One offloader on an ample channel == the paper's constant-b model."""

    def test_evaluate_placement_bit_identical(self):
        plain_system, apps, _ = make_system(1)
        channel_system, _, _ = make_system(
            1, channel=SharedChannel(capacity=PROFILE.bandwidth)
        )
        placement = {"u1": {0, 1}}
        plain = plain_system.evaluate_placement(apps, placement)
        shared = channel_system.evaluate_placement(apps, placement)
        assert shared.per_user == plain.per_user
        assert shared.effective_bandwidth == {"u1": PROFILE.bandwidth}

    def test_greedy_bit_identical(self):
        plain_system, apps, bisections = make_system(1)
        channel_system, _, _ = make_system(
            1, channel=SharedChannel(capacity=10.0 * PROFILE.bandwidth)
        )
        plain = generate_offloading_scheme(plain_system, apps, bisections)
        shared = generate_offloading_scheme(channel_system, apps, bisections)
        assert shared.remote_parts == plain.remote_parts
        assert shared.consumption.energy == plain.consumption.energy
        assert shared.consumption.time == plain.consumption.time


class TestContentionFixedPoint:
    def test_effective_rates_reported(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        system, apps, bisections = make_system(4, channel=channel)
        result = generate_offloading_scheme(system, apps, bisections)
        assert result.contention_rounds >= 1
        assert set(result.effective_rates) == set(apps)
        for rate in result.effective_rates.values():
            assert 0.0 < rate <= PROFILE.bandwidth

    def test_aware_never_worse_than_blind_under_channel(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        for n_users in (2, 4, 6):
            plain_system, apps, bisections = make_system(n_users)
            aware_system, _, _ = make_system(n_users, channel=channel)
            blind = generate_offloading_scheme(plain_system, apps, bisections)
            aware = generate_offloading_scheme(aware_system, apps, bisections)
            blind_under_channel = aware_system.evaluate_placement(
                apps, blind.remote_parts
            )
            assert (
                aware.consumption.combined()
                <= blind_under_channel.combined() + 1e-9
            )

    def test_contention_can_change_the_placement(self):
        # On a starved channel, co-offloading everything is a bad deal;
        # the aware greedy must shed transmitters relative to blind.
        channel = SharedChannel(capacity=PROFILE.bandwidth / 8.0)
        plain_system, apps, bisections = make_system(6)
        aware_system, _, _ = make_system(6, channel=channel)
        blind = generate_offloading_scheme(plain_system, apps, bisections)
        aware = generate_offloading_scheme(aware_system, apps, bisections)
        blind_offloaders = sum(1 for p in blind.remote_parts.values() if p)
        aware_offloaders = sum(1 for p in aware.remote_parts.values() if p)
        assert aware_offloaders <= blind_offloaders

    def test_deterministic(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        first_system, apps, bisections = make_system(4, channel=channel)
        second_system, _, _ = make_system(4, channel=channel)
        first = generate_offloading_scheme(first_system, apps, bisections)
        second = generate_offloading_scheme(second_system, apps, bisections)
        assert first.remote_parts == second.remote_parts
        assert first.effective_rates == second.effective_rates


class TestBestResponseGame:
    def test_converges_and_is_deterministic(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        system, apps, bisections = make_system(4, channel=channel)
        first = best_response_equilibrium(system, apps, bisections, seed=3)
        second = best_response_equilibrium(system, apps, bisections, seed=3)
        assert first.converged
        assert first.remote_parts == second.remote_parts
        assert first.moves == second.moves
        assert first.rounds == second.rounds

    def test_equilibrium_has_no_profitable_deviation(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        system, apps, bisections = make_system(4, channel=channel)
        weights = ObjectiveWeights()
        result = best_response_equilibrium(
            system, apps, bisections, weights=weights, seed=0
        )
        assert result.converged
        consumption = system.evaluate_placement(apps, result.remote_parts)
        for uid in apps:
            here = consumption.per_user[uid]
            cost = weights.combine(here.energy, here.time)
            # Flip this user's binary strategy; nobody should gain.
            flipped = {u: set(p) for u, p in result.remote_parts.items()}
            if flipped.get(uid):
                flipped[uid] = set()
            else:
                flipped[uid] = solo_offload_set(
                    system, uid, apps, bisections, weights=weights
                )
            alt = system.evaluate_placement(apps, flipped).per_user[uid]
            assert cost <= weights.combine(alt.energy, alt.time) + 1e-9

    def test_solo_offload_set_matches_single_user_greedy(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        system, apps, bisections = make_system(3, channel=channel)
        solo = solo_offload_set(system, "u2", apps, bisections)
        lone_system, lone_apps, lone_bis = make_system(1, channel=channel)
        lone = generate_offloading_scheme(lone_system, lone_apps, lone_bis)
        # Identical device/app/channel: the solo strategy is the
        # single-user greedy's placement (modulo the user id).
        assert solo == lone.remote_parts.get("u1", set())


class TestPlannerSimulatorAgreement:
    def test_static_two_user_upload_times_agree(self):
        """Planner ``t_t = cut / b_i(2)`` == simulated upload finish.

        Two identical users offload the same parts on a shared channel
        the whole time (equal cuts, so neither finishes early and
        re-paces the other) — the planner's closed-form airtime and the
        discrete-event simulator must agree exactly.
        """
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        system, apps, _ = make_system(2, channel=channel)
        placement = {"u1": {0, 1}, "u2": {0, 1}}
        consumption = system.evaluate_placement(apps, placement)
        report = simulate_scheme(
            system,
            apps,
            placement,
            shared_uplink_capacity=channel.capacity,
        )
        for uid in apps:
            rate = consumption.effective_bandwidth[uid]
            assert rate == pytest.approx(PROFILE.bandwidth / 2.0)
            expected = apps[uid].cut_weight(placement[uid]) / rate
            assert report.timeline(uid).upload_finish == pytest.approx(expected)


class TestFleetChannelThreading:
    def test_channel_reaches_every_server_and_survives_eviction(self):
        channel = SharedChannel(capacity=PROFILE.bandwidth)
        fleet = EdgeFleet(2, 300.0, channel=channel)
        for server in fleet.servers.values():
            assert server.planner.channel is channel
        graph_a, _ = make_app("fa")
        graph_b, _ = make_app("fb")
        first = fleet.admit(MobileDevice("fa", profile=PROFILE), graph_a)
        fleet.admit(MobileDevice("fb", profile=PROFILE), graph_b)
        fleet.servers[first.server_id].evict("fa")
        for server in fleet.servers.values():
            assert server.planner.channel is channel


class TestContentionExperiment:
    def test_sweep_smoke(self):
        from repro.experiments.contention import ARMS, run_contention_experiment
        from repro.workloads.profiles import quick_profile

        profile = dataclasses.replace(quick_profile(), multiuser_graph_size=30)
        rows, curve = run_contention_experiment(
            profile=profile, user_counts=(1, 2), seed=1
        )
        assert {row.arm for row in rows} == set(ARMS)
        assert len(rows) == 2 * len(ARMS)
        assert [point.n_users for point in curve] == [1, 2]
        # The physics: doubling the co-offloading population on a
        # binding channel strictly raises per-user airtime.
        assert curve[1].transmission_time > curve[0].transmission_time
        for row in rows:
            if row.arm == "game":
                assert row.game_converged

    def test_cli_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "contention-bench",
                "--profile",
                "quick",
                "--users",
                "1",
                "2",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"curve"' in out
