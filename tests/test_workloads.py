"""Tests for workload generation: netgen, applications, multi-user."""

import pytest

from repro.graphs.components import connected_components
from repro.graphs.validation import check_graph_invariants
from repro.workloads.applications import (
    call_graph_from_weighted_graph,
    synthesize_application,
)
from repro.workloads.multiuser import build_mec_system
from repro.workloads.netgen import NetgenConfig, netgen_graph, paper_network_configs
from repro.workloads.profiles import ExperimentProfile, paper_profile, quick_profile


class TestNetgen:
    def test_exact_counts(self):
        config = NetgenConfig(n_nodes=120, n_edges=500, seed=1)
        g = netgen_graph(config)
        assert g.node_count == 120
        assert g.edge_count == 500
        check_graph_invariants(g)

    def test_deterministic_for_seed(self):
        config = NetgenConfig(n_nodes=80, n_edges=300, seed=7)
        a = netgen_graph(config)
        b = netgen_graph(config)
        assert a.edge_list() == b.edge_list()
        assert [a.node_weight(n) for n in a.nodes()] == [
            b.node_weight(n) for n in b.nodes()
        ]

    def test_different_seeds_differ(self):
        a = netgen_graph(NetgenConfig(n_nodes=80, n_edges=300, seed=1))
        b = netgen_graph(NetgenConfig(n_nodes=80, n_edges=300, seed=2))
        assert a.edge_list() != b.edge_list()

    def test_component_structure(self):
        config = NetgenConfig(n_nodes=240, n_edges=1100, seed=3)
        g = netgen_graph(config)
        components = connected_components(g)
        assert len(components) == config.component_count
        # Components are balanced to within one node.
        sizes = sorted(len(c) for c in components)
        assert sizes[-1] - sizes[0] <= 1

    def test_weight_ranges_respected(self):
        config = NetgenConfig(n_nodes=60, n_edges=250, seed=4)
        g = netgen_graph(config)
        lo, hi = config.node_weight_range
        for n in g.nodes():
            assert lo <= g.node_weight(n) <= hi
        weight_lo = min(config.inter_weight_range[0], config.intra_weight_range[0])
        weight_hi = max(config.inter_weight_range[1], config.intra_weight_range[1])
        for _, _, w in g.edges():
            assert weight_lo <= w <= weight_hi

    def test_bimodal_weights_present(self):
        """Both heavy (intra) and light (inter) edges must exist."""
        config = NetgenConfig(n_nodes=100, n_edges=480, seed=5)
        g = netgen_graph(config)
        weights = [w for _, _, w in g.edges()]
        assert any(w >= config.intra_weight_range[0] for w in weights)
        assert any(w <= config.inter_weight_range[1] for w in weights)

    def test_paper_configs_cover_table1(self):
        configs = paper_network_configs()
        assert [(c.n_nodes, c.n_edges) for c in configs] == [
            (250, 1214),
            (500, 2643),
            (1000, 4912),
            (2000, 9578),
            (5000, 40243),
        ]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            NetgenConfig(n_nodes=1, n_edges=0)
        with pytest.raises(ValueError):
            NetgenConfig(n_nodes=10, n_edges=5)  # below n-1
        with pytest.raises(ValueError):
            NetgenConfig(n_nodes=10, n_edges=100)  # above complete


class TestApplications:
    def test_synthesize_extracts_valid_graph(self):
        fcg = synthesize_application("demo", n_functions=30, seed=1)
        assert fcg.function_count == 30
        check_graph_invariants(fcg.graph)
        assert not fcg.info("main").offloadable  # UI-bound entry point

    def test_coupling_modes_differ(self):
        loose = synthesize_application("l", 40, seed=2, coupling="loose")
        tight = synthesize_application("t", 40, seed=2, coupling="tight")
        assert tight.total_communication() > loose.total_communication()

    def test_sensor_fraction_pins_functions(self):
        fcg = synthesize_application("s", 60, seed=3, sensor_fraction=0.5)
        pinned = len(fcg.unoffloadable_functions())
        assert pinned > 5  # main + a good share of sensor readers

    def test_zero_sensor_fraction(self):
        fcg = synthesize_application("s", 30, seed=4, sensor_fraction=0.0)
        assert fcg.unoffloadable_functions() == ["main"]

    def test_components_assigned(self):
        fcg = synthesize_application("c", 31, seed=5, n_components=3)
        assert len(fcg.components()) == 4  # ui + 3 components

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            synthesize_application("x", 1)
        with pytest.raises(ValueError):
            synthesize_application("x", 10, coupling="medium")
        with pytest.raises(ValueError):
            synthesize_application("x", 10, sensor_fraction=1.5)

    def test_wrap_weighted_graph(self):
        g = netgen_graph(NetgenConfig(n_nodes=50, n_edges=200, seed=6))
        fcg = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.1, seed=6)
        assert fcg.function_count == 50
        pinned = fcg.unoffloadable_functions()
        assert len(pinned) == 5
        assert fcg.total_computation() == pytest.approx(g.total_node_weight())
        assert fcg.total_communication() == pytest.approx(g.total_edge_weight())

    def test_wrap_pins_hub(self):
        g = netgen_graph(NetgenConfig(n_nodes=40, n_edges=150, seed=7))
        hub = max(g.nodes(), key=lambda n: (g.degree(n), g.weighted_degree(n)))
        fcg = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.0, seed=7)
        # Even at fraction 0 the hub 'main' stays pinned.
        assert f"f{hub}" in fcg.unoffloadable_functions()


class TestMultiUser:
    def test_build_system_shape(self):
        profile = quick_profile()
        workload = build_mec_system(7, profile, graph_size=60)
        assert len(workload.system.users) == 7
        assert len(workload.call_graphs) == 7
        assert len(workload.distinct_graphs) == min(profile.distinct_graphs, 7)

    def test_round_robin_assignment(self):
        profile = quick_profile()
        workload = build_mec_system(6, profile, graph_size=60)
        pool = len(workload.distinct_graphs)
        for user_id, index in workload.user_graph_index.items():
            assert workload.call_graphs[user_id] is workload.distinct_graphs[index]
            assert index == int(user_id.replace("user", "")) % pool

    def test_server_capacity_scales_with_users(self):
        profile = quick_profile()
        w5 = build_mec_system(5, profile, graph_size=60)
        w10 = build_mec_system(10, profile, graph_size=60)
        assert w10.system.server.total_capacity == pytest.approx(
            2 * w5.system.server.total_capacity
        )

    def test_invalid_user_count(self):
        with pytest.raises(ValueError):
            build_mec_system(0, quick_profile())


class TestProfiles:
    def test_paper_profile_scales(self):
        profile = paper_profile()
        assert profile.graph_sizes[-1] == 5000
        assert profile.user_counts[-1] == 5000
        assert profile.multiuser_graph_size == 1000

    def test_quick_profile_smaller(self):
        quick = quick_profile()
        paper = paper_profile()
        assert max(quick.graph_sizes) < max(paper.graph_sizes)
        assert max(quick.user_counts) < max(paper.user_counts)

    def test_edges_for_table1_sizes(self):
        profile = paper_profile()
        assert profile.edges_for(250) == 1214
        assert profile.edges_for(5000) == 40243
        # Non-Table-I size uses the density.
        assert profile.edges_for(100) == int(100 * profile.edges_per_node)

    def test_profile_device_regime(self):
        """The tuned regime keeps wireless pricier than local compute."""
        device = quick_profile().device
        assert device.power_transmit > device.power_compute
