"""Tests for scenario comparison and DOT export."""

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.graphs.dot import clustering_to_dot, cut_to_dot, graph_to_dot
from repro.graphs.generators import path_graph, two_cluster_graph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation.faults import ServerDegradation
from repro.simulation.scenario import Scenario, compare_scenarios

PROFILE = DeviceProfile(
    compute_capacity=10.0, power_compute=2.0, power_transmit=5.0, bandwidth=20.0
)


def fixture_system():
    fcg = FunctionCallGraph("sc")
    fcg.add_function("pin", computation=50.0, offloadable=False)
    fcg.add_function("ship", computation=200.0)
    fcg.add_data_flow("pin", "ship", 40.0)
    app = PartitionedApplication("u1", fcg, [{"ship"}])
    system = MECSystem(
        EdgeServer(50.0), [UserContext(MobileDevice("u1", profile=PROFILE), fcg)]
    )
    return system, {"u1": app}, {"u1": {0}}


class TestScenarios:
    def test_compare_runs_all(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(
            system,
            apps,
            placement,
            [
                Scenario("healthy"),
                Scenario("degraded", faults=(ServerDegradation(time=1.0, factor=0.25),)),
            ],
        )
        assert set(comparison.reports) == {"healthy", "degraded"}
        assert comparison.baseline == "healthy"

    def test_degradation_inflates_makespan_not_energy(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(
            system,
            apps,
            placement,
            [
                Scenario("healthy"),
                Scenario("degraded", faults=(ServerDegradation(time=0.5, factor=0.1),)),
            ],
        )
        assert comparison.makespan_inflation("degraded") > 1.0
        assert comparison.energy_inflation("degraded") == pytest.approx(1.0)
        assert comparison.makespan_inflation("healthy") == 1.0

    def test_arrival_scenario(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(
            system,
            apps,
            placement,
            [Scenario("batch"), Scenario("late", arrivals={"u1": 10.0})],
        )
        assert comparison.makespan_inflation("late") > 1.0

    def test_shared_channel_scenario(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(
            system,
            apps,
            placement,
            [Scenario("private"), Scenario("narrow", shared_uplink_capacity=5.0)],
        )
        # 40 data units at 5/s (shared) vs 20/s (private).
        narrow = comparison.report("narrow").timeline("u1")
        private = comparison.report("private").timeline("u1")
        assert narrow.upload_finish > private.upload_finish

    def test_rows_shape(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(system, apps, placement, [Scenario("only")])
        rows = comparison.rows()
        assert len(rows) == 1
        assert rows[0][0] == "only"

    def test_duplicate_names_rejected(self):
        system, apps, placement = fixture_system()
        with pytest.raises(ValueError, match="duplicate"):
            compare_scenarios(
                system, apps, placement, [Scenario("x"), Scenario("x")]
            )

    def test_empty_scenarios_rejected(self):
        system, apps, placement = fixture_system()
        with pytest.raises(ValueError, match="at least one"):
            compare_scenarios(system, apps, placement, [])

    def test_unknown_report_rejected(self):
        system, apps, placement = fixture_system()
        comparison = compare_scenarios(system, apps, placement, [Scenario("a")])
        with pytest.raises(KeyError):
            comparison.report("ghost")


class TestDotExport:
    def test_plain_graph(self):
        dot = graph_to_dot(path_graph(3), name="p3")
        assert dot.startswith('graph "p3" {')
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == 2
        assert '"0"' in dot and '"2"' in dot

    def test_cut_marks_crossings_red(self):
        g = two_cluster_graph(3, intra_weight=5.0, bridge_weight=1.0)
        dot = cut_to_dot(g, part_one=set(range(3)))
        assert dot.count("color=red") == 1  # exactly the bridge

    def test_clustering_colors_groups(self):
        g = two_cluster_graph(3)
        dot = clustering_to_dot(g, [set(range(3)), set(range(3, 6))])
        # Two distinct fill colors drawn from the palette.
        colors = {
            line.split('fillcolor="')[1].split('"')[0]
            for line in dot.splitlines()
            if "fillcolor=" in line
        }
        assert len(colors) == 2

    def test_quoting_of_odd_node_names(self):
        from repro.graphs.weighted_graph import WeightedGraph

        g = WeightedGraph()
        g.add_node('fn "main"', weight=1.0)
        g.add_node("other", weight=1.0)
        g.add_edge('fn "main"', "other", weight=2.0)
        dot = graph_to_dot(g)
        assert '\\"main\\"' in dot

    def test_compression_clusters_render(self):
        from repro.compression import GraphCompressor

        g = two_cluster_graph(4, intra_weight=10.0, bridge_weight=1.0)
        compressed = GraphCompressor().compress(g).compressed
        dot = clustering_to_dot(g, compressed.clusters)
        assert "graph" in dot
        assert dot.count(" -- ") == g.edge_count
