"""Tests for the multi-server edge fleet (repro.fleet).

Covers the acceptance contract of the fleet layer: routing-policy
behaviour (cycling, shortest-queue, power-of-two balance, consistent-
hash affinity and its minimal-remap property), sharded admission with
per-server plan caches (affinity hit rate within 10% of a single
server's), fleet-wide consumption aggregation, rebalancing, and
failover — killing one of N servers re-admits every drained user on the
survivors with finite E + T, and with zero surviving capacity users
degrade to all-local execution instead of being lost.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    EdgeFleet,
    FingerprintAffinityRouting,
    LeastLoadedRouting,
    PowerOfTwoRouting,
    RoundRobinRouting,
    ServerLoad,
    all_local_breakdown,
    apply_outages,
    handle_outage,
    make_routing_policy,
)
from repro.mec.devices import MobileDevice
from repro.simulation import ServerOutage
from repro.workloads import synthesize_application
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import (
    call_graph_from_dict,
    call_graph_to_dict,
    replay_arrivals,
)

POOL_SIZE = 4
REQUESTS = 24
SERVERS = 4


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        quick_profile(), distinct_graphs=POOL_SIZE, multiuser_graph_size=30
    )


@pytest.fixture(scope="module")
def arrival_trace(fleet_profile):
    workload = build_mec_system(REQUESTS, fleet_profile)
    return replay_arrivals(workload, rate=100.0, seed=0)


def make_fleet(fleet_profile, policy, servers=SERVERS, users=REQUESTS, **kwargs):
    capacity = fleet_profile.server_capacity_per_user * users / servers
    return EdgeFleet(servers, capacity, routing=policy, **kwargs)


def replay(fleet, arrivals, fleet_profile):
    return [
        fleet.admit(MobileDevice(user_id, profile=fleet_profile.device), graph)
        for user_id, graph in arrivals
    ]


def loads(counts: dict[str, int]) -> list[ServerLoad]:
    return [ServerLoad(server_id, users) for server_id, users in counts.items()]


class TestRoutingPolicies:
    def test_round_robin_cycles_in_order(self):
        policy = RoundRobinRouting()
        view = loads({"b": 0, "a": 0, "c": 0})
        picks = [policy.route(f"k{i}", view) for i in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_least_loaded_joins_shortest_queue(self):
        policy = LeastLoadedRouting()
        assert policy.route("k", loads({"a": 3, "b": 1, "c": 2})) == "b"
        # Ties break by remote load, then id.
        view = [ServerLoad("b", 1, 5.0), ServerLoad("a", 1, 9.0)]
        assert policy.route("k", view) == "b"

    def test_power_of_two_is_deterministic_per_seed(self):
        view = loads({f"s{i}": i for i in range(6)})
        first = [PowerOfTwoRouting(seed=7).route(f"k{i}", view) for i in range(20)]
        second = [PowerOfTwoRouting(seed=7).route(f"k{i}", view) for i in range(20)]
        assert first == second
        assert PowerOfTwoRouting(seed=7).route("k", loads({"only": 9})) == "only"

    def test_affinity_is_stable_and_key_partitioned(self):
        policy = FingerprintAffinityRouting()
        view = loads({"a": 0, "b": 0, "c": 0, "d": 0})
        keys = [f"fingerprint-{i}" for i in range(40)]
        first = {key: policy.route(key, view) for key in keys}
        second = {key: policy.route(key, view) for key in keys}
        assert first == second
        assert len(set(first.values())) > 1  # keys actually spread

    def test_affinity_removal_only_remaps_dead_servers_keys(self):
        policy = FingerprintAffinityRouting()
        full = loads({"a": 0, "b": 0, "c": 0, "d": 0})
        keys = [f"fingerprint-{i}" for i in range(60)]
        before = {key: policy.route(key, full) for key in keys}
        survivors = [server for server in full if server.server_id != "a"]
        after = {key: policy.route(key, survivors) for key in keys}
        for key in keys:
            if before[key] != "a":
                assert after[key] == before[key]
            else:
                assert after[key] != "a"

    def test_round_robin_handles_eligibility_churn(self):
        """Regression: a raw counter modulo the set size skips servers.

        The cursor is a server-id watermark, so when the eligible set
        shrinks between calls the cycle continues from the last-served
        id instead of jumping by stale index.
        """
        policy = RoundRobinRouting()
        assert policy.route("k0", loads({"a": 0, "b": 0, "c": 0})) == "a"
        # "b" is next even though the set shrank; index 1 % 2 picked "c".
        assert policy.route("k1", loads({"b": 0, "c": 0})) == "b"
        # Growing the set back resumes the cycle where it left off.
        assert policy.route("k2", loads({"a": 0, "b": 0, "c": 0})) == "c"
        assert policy.route("k3", loads({"a": 0, "b": 0, "c": 0})) == "a"
        # The watermark survives its own server's death mid-cycle.
        policy.forget("a")
        assert policy.route("k4", loads({"b": 0, "c": 0})) == "b"

    def test_least_loaded_utilisation_mode_respects_capacity(self):
        view = [
            ServerLoad("small", 2, remote_load=50.0, capacity=100.0),
            ServerLoad("big", 4, remote_load=100.0, capacity=1000.0),
        ]
        # Headcount says "small" (2 < 4); utilisation says "big" (.1 < .5).
        assert LeastLoadedRouting().route("k", view) == "small"
        assert LeastLoadedRouting(balance_on="utilisation").route("k", view) == "big"

    def test_balance_metric_is_validated(self):
        with pytest.raises(ValueError, match="unknown balance metric"):
            LeastLoadedRouting(balance_on="entropy")
        with pytest.raises(ValueError, match="unknown balance metric"):
            PowerOfTwoRouting(balance_on="entropy")

    def test_latency_weight_steers_toward_nearby_servers(self):
        view = [
            ServerLoad("far", 1, rtt=0.5),
            ServerLoad("near", 2, rtt=0.0),
        ]
        assert LeastLoadedRouting().route("k", view) == "far"
        assert LeastLoadedRouting(latency_weight=4.0).route("k", view) == "near"

    def test_affinity_latency_slack_trades_locality_for_proximity(self):
        strict = FingerprintAffinityRouting()
        view = loads({"a": 0, "b": 0, "c": 0})
        key = "fingerprint-x"
        owner = strict.route(key, view)
        far_view = [
            ServerLoad(s.server_id, 0, rtt=9.0 if s.server_id == owner else 0.0)
            for s in view
        ]
        rtts = {s.server_id: s.rtt for s in far_view}
        # Strict ring ownership ignores RTT entirely.
        assert strict.route(key, far_view) == owner
        # Zero slack always takes a nearest server (ring order tiebreak).
        nearest = FingerprintAffinityRouting(latency_slack=0.0).route(key, far_view)
        assert nearest != owner
        assert rtts[nearest] == 0.0
        # Generous slack restores cache locality.
        loose = FingerprintAffinityRouting(latency_slack=10.0)
        assert loose.route(key, far_view) == owner

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing_policy("random-walk")


class TestFleetAdmission:
    def test_affinity_hit_rate_matches_single_server(
        self, fleet_profile, arrival_trace
    ):
        """Acceptance: 4-server affinity hit rate within 10% of 1 server."""
        single = make_fleet(fleet_profile, RoundRobinRouting(), servers=1)
        replay(single, arrival_trace, fleet_profile)
        sharded = make_fleet(fleet_profile, FingerprintAffinityRouting())
        replay(sharded, arrival_trace, fleet_profile)

        single_rate = single.stats().cache_hit_rate
        sharded_rate = sharded.stats().cache_hit_rate
        assert single_rate == pytest.approx((REQUESTS - POOL_SIZE) / REQUESTS)
        assert sharded_rate >= single_rate - 0.10

    def test_power_of_two_keeps_load_balanced(self, fleet_profile, arrival_trace):
        """Acceptance: max/mean admitted users <= 1.5 on a uniform trace."""
        fleet = make_fleet(fleet_profile, PowerOfTwoRouting(seed=3))
        replay(fleet, arrival_trace, fleet_profile)
        stats = fleet.stats()
        assert stats.users == REQUESTS
        assert stats.imbalance <= 1.5

    def test_consumption_aggregates_every_user(self, fleet_profile, arrival_trace):
        fleet = make_fleet(fleet_profile, RoundRobinRouting())
        replay(fleet, arrival_trace, fleet_profile)
        consumption = fleet.total_consumption()
        assert set(consumption.per_user) == {uid for uid, _ in arrival_trace}
        assert consumption.energy > 0
        assert consumption.time > 0

    def test_duplicate_user_is_rejected_fleet_wide(self, fleet_profile):
        fleet = make_fleet(fleet_profile, LeastLoadedRouting(), users=2)
        app = synthesize_application("dup", n_functions=15, seed=5)
        device = MobileDevice("u1", profile=fleet_profile.device)
        fleet.admit(device, app)
        with pytest.raises(ValueError, match="already admitted"):
            fleet.admit(device, app)

    def test_cache_hits_skip_replanning(self, fleet_profile):
        fleet = make_fleet(fleet_profile, FingerprintAffinityRouting(), users=3)
        app = synthesize_application("popular", n_functions=20, seed=9)
        admissions = [
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
            for i in range(3)
        ]
        assert [admission.cache_hit for admission in admissions] == [False, True, True]
        servers = {admission.server_id for admission in admissions}
        assert len(servers) == 1  # affinity pinned the app to one server

    def test_rebalance_flattens_affinity_skew(self, fleet_profile):
        fleet = make_fleet(fleet_profile, FingerprintAffinityRouting(), servers=3, users=6)
        app = synthesize_application("hot", n_functions=20, seed=2)
        for i in range(6):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        assert fleet.stats().imbalance == pytest.approx(3.0)
        before = fleet.total_consumption()
        moves = fleet.rebalance(cost_aware=False)
        stats = fleet.stats()
        assert moves == 4
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.users == 6
        after = fleet.total_consumption()
        assert set(after.per_user) == set(before.per_user)


def skewed_fleet(fleet_profile, servers=3, users=6, **kwargs):
    """Affinity-pinned fleet: every user runs the same hot app, so the
    whole trace lands on one server and rebalance has real work to do."""
    fleet = make_fleet(
        fleet_profile, FingerprintAffinityRouting(), servers=servers, users=users,
        **kwargs,
    )
    app = synthesize_application("hot", n_functions=20, seed=2)
    for i in range(users):
        fleet.admit(
            MobileDevice(f"u{i}", profile=fleet_profile.device),
            call_graph_from_dict(call_graph_to_dict(app)),
        )
    return fleet


class TestHeterogeneousFleet:
    def test_capacities_build_a_skewed_pool(self):
        fleet = EdgeFleet(capacities=[250.0, 500.0, 1000.0])
        caps = [
            server.server.total_capacity
            for _, server in sorted(fleet.servers.items())
        ]
        assert caps == [250.0, 500.0, 1000.0]

    def test_capacities_conflicts_with_explicit_servers(self):
        from repro.mec.devices import EdgeServer

        with pytest.raises(ValueError, match="not both"):
            EdgeFleet(servers={"s": EdgeServer(100.0)}, capacities=[1.0])
        with pytest.raises(ValueError, match="at least one server"):
            EdgeFleet(capacities=[])

    def test_utilisation_routing_fills_the_big_server(self, fleet_profile):
        """Regression: headcount routing overloads small servers."""

        def fill(balance_on):
            fleet = EdgeFleet(
                capacities=[100.0, 1000.0],
                routing=LeastLoadedRouting(balance_on=balance_on),
            )
            for i in range(8):
                app = synthesize_application(f"app{i}", n_functions=20, seed=i)
                fleet.admit(MobileDevice(f"u{i}", profile=fleet_profile.device), app)
            return fleet

        by_users = fill("users")
        by_utilisation = fill("utilisation")
        big = "edge-01"
        assert by_users.servers[big].remote_load > 0  # users actually offload
        assert by_utilisation.servers[big].users > by_users.servers[big].users
        assert (
            by_utilisation.stats().utilisation_imbalance
            <= by_users.stats().utilisation_imbalance
        )


class TestRebalanceRegressions:
    def test_rebalance_never_overfills_past_user_cap(self, fleet_profile):
        """Regression: move targets must respect max_users_per_server."""
        fleet = skewed_fleet(fleet_profile, servers=2, users=7)
        hot = max(fleet.servers.values(), key=lambda s: s.users)
        cold = next(s for s in fleet.servers.values() if s is not hot)
        assert (hot.users, cold.users) == (7, 0)
        fleet.max_users_per_server = 2  # the operator tightens the cap
        moves = fleet.rebalance(cost_aware=False)
        # The cold server fills exactly to the cap and the pass stops:
        # the old global-idlest pick kept shovelling users past it.
        assert moves == 2
        assert cold.users == 2
        assert hot.users == 5

    def test_rebalance_keeps_user_gauges_fresh(self, fleet_profile):
        """Regression: both move endpoints must update fleet_users_*."""
        fleet = skewed_fleet(fleet_profile)
        moves = fleet.rebalance(cost_aware=False)
        assert moves > 0
        for server_id, server in fleet.servers.items():
            gauge = fleet.metrics.gauge(f"fleet_users_{server_id}").value
            assert gauge == server.users, (
                f"gauge fleet_users_{server_id} says {gauge}, "
                f"server holds {server.users}"
            )

    def test_rebalance_terminates_at_zero_tolerance(self, fleet_profile):
        """Regression: a spread of 1 used to ping-pong forever at
        tolerance=0 (each move just swapped which server was busiest)."""
        fleet = skewed_fleet(fleet_profile, servers=2, users=3)
        moves = fleet.rebalance(tolerance=0, cost_aware=False)
        assert moves == 1  # 3/0 -> 2/1; spread 1 cannot improve
        assert sorted(s.users for s in fleet.servers.values()) == [1, 2]


class TestDegradedMode:
    def test_full_fleet_degrades_to_all_local(self, fleet_profile):
        fleet = make_fleet(
            fleet_profile, LeastLoadedRouting(), servers=2, users=4,
            max_users_per_server=1,
        )
        app = synthesize_application("deg", n_functions=15, seed=4)
        admissions = [
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
            for i in range(4)
        ]
        assert [admission.degraded for admission in admissions] == [
            False, False, True, True,
        ]
        stats = fleet.stats()
        assert stats.degraded_users == 2
        consumption = fleet.total_consumption()
        assert len(consumption.per_user) == 4
        assert consumption.combined() > 0
        assert consumption.combined() < float("inf")

    def test_all_local_breakdown_matches_formulas(self, fleet_profile):
        app = synthesize_application("local", n_functions=12, seed=6)
        device = MobileDevice("u", profile=fleet_profile.device)
        breakdown = all_local_breakdown(device, app)
        expected_time = app.total_computation() / device.compute_capacity
        assert breakdown.local_time == pytest.approx(expected_time)
        assert breakdown.energy == pytest.approx(expected_time * device.power_compute)
        assert breakdown.transmission_energy == 0.0
        assert breakdown.remote_time == 0.0


class TestFailover:
    def test_outage_reassigns_every_user(self, fleet_profile, arrival_trace):
        """Acceptance: killing 1 of N servers loses no user, E+T finite."""
        fleet = make_fleet(fleet_profile, RoundRobinRouting())
        replay(fleet, arrival_trace, fleet_profile)
        victim = fleet.load_stats()[0].server_id
        drained_expected = fleet.servers[victim].users

        report = handle_outage(fleet, ServerOutage(time=1.0, server_id=victim))

        assert report.drained_users == drained_expected
        assert report.lost_users == 0
        assert not report.degraded
        assert set(report.reassigned.values()) <= set(fleet.servers)
        assert victim not in fleet.servers
        consumption = report.consumption_after
        assert len(consumption.per_user) == REQUESTS
        assert 0 < consumption.combined() < float("inf")

    def test_outage_with_no_capacity_degrades_users(self, fleet_profile):
        fleet = make_fleet(
            fleet_profile, LeastLoadedRouting(), servers=2, users=4,
            max_users_per_server=2,
        )
        app = synthesize_application("edge", n_functions=15, seed=8)
        for i in range(4):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        victim = sorted(fleet.servers)[0]
        report = handle_outage(fleet, ServerOutage(time=0.5, server_id=victim))
        assert report.drained_users == 2
        assert report.lost_users == 0
        assert len(report.degraded) == 2  # the survivor was already full
        assert len(report.consumption_after.per_user) == 4
        assert report.consumption_after.combined() < float("inf")

    def test_killing_every_server_leaves_all_users_local(self, fleet_profile):
        fleet = make_fleet(fleet_profile, RoundRobinRouting(), servers=3, users=6)
        app = synthesize_application("blackout", n_functions=15, seed=10)
        for i in range(6):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        outages = [
            ServerOutage(time=float(index), server_id=server_id)
            for index, server_id in enumerate(sorted(fleet.servers))
        ]
        reports = apply_outages(fleet, outages)
        assert sum(report.lost_users for report in reports) == 0
        assert not fleet.servers
        stats = fleet.stats()
        assert stats.degraded_users == 6
        consumption = fleet.total_consumption()
        assert len(consumption.per_user) == 6
        assert 0 < consumption.combined() < float("inf")

    def test_outage_requires_known_server(self, fleet_profile):
        fleet = make_fleet(fleet_profile, RoundRobinRouting(), servers=2, users=2)
        with pytest.raises(KeyError, match="unknown or already-dead"):
            handle_outage(fleet, ServerOutage(time=0.0, server_id="edge-99"))

    def test_server_outage_fault_validation(self):
        with pytest.raises(ValueError, match="server_id"):
            ServerOutage(time=1.0)


class TestFleetBenchCLI:
    def test_smoke_path(self, capsys):
        from repro.cli import main

        assert main(["fleet-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fleet-bench: 16 requests over 4 distinct apps" in out
        for policy in ("round-robin", "least-loaded", "power-of-two", "affinity"):
            assert policy in out
        assert "single server (equal total capacity)" in out

    def test_unknown_policy_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["fleet-bench", "--smoke", "--policies", "magic"]) == 2
        assert "unknown routing policies" in capsys.readouterr().err

    def test_mobility_sweep_path(self, capsys):
        from repro.cli import main

        assert main([
            "fleet-bench", "--smoke", "--mobility", "corridor",
            "--speed", "0.05", "--ticks", "6",
            "--handover", "never", "nearest:0", "nearest",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet-bench --mobility corridor" in out
        for arm in ("never", "nearest:0", "nearest"):
            assert arm in out
        assert "best handover policy" in out

    def test_unknown_handover_is_an_error(self, capsys):
        from repro.cli import main

        assert main([
            "fleet-bench", "--smoke", "--mobility", "corridor",
            "--handover", "psychic",
        ]) == 2
        assert "unknown handover policies" in capsys.readouterr().err
