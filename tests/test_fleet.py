"""Tests for the multi-server edge fleet (repro.fleet).

Covers the acceptance contract of the fleet layer: routing-policy
behaviour (cycling, shortest-queue, power-of-two balance, consistent-
hash affinity and its minimal-remap property), sharded admission with
per-server plan caches (affinity hit rate within 10% of a single
server's), fleet-wide consumption aggregation, rebalancing, and
failover — killing one of N servers re-admits every drained user on the
survivors with finite E + T, and with zero surviving capacity users
degrade to all-local execution instead of being lost.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    EdgeFleet,
    FingerprintAffinityRouting,
    LeastLoadedRouting,
    PowerOfTwoRouting,
    RoundRobinRouting,
    ServerLoad,
    all_local_breakdown,
    apply_outages,
    handle_outage,
    make_routing_policy,
)
from repro.mec.devices import MobileDevice
from repro.simulation import ServerOutage
from repro.workloads import synthesize_application
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import (
    call_graph_from_dict,
    call_graph_to_dict,
    replay_arrivals,
)

POOL_SIZE = 4
REQUESTS = 24
SERVERS = 4


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        quick_profile(), distinct_graphs=POOL_SIZE, multiuser_graph_size=30
    )


@pytest.fixture(scope="module")
def arrival_trace(fleet_profile):
    workload = build_mec_system(REQUESTS, fleet_profile)
    return replay_arrivals(workload, rate=100.0, seed=0)


def make_fleet(fleet_profile, policy, servers=SERVERS, users=REQUESTS, **kwargs):
    capacity = fleet_profile.server_capacity_per_user * users / servers
    return EdgeFleet(servers, capacity, routing=policy, **kwargs)


def replay(fleet, arrivals, fleet_profile):
    return [
        fleet.admit(MobileDevice(user_id, profile=fleet_profile.device), graph)
        for user_id, graph in arrivals
    ]


def loads(counts: dict[str, int]) -> list[ServerLoad]:
    return [ServerLoad(server_id, users) for server_id, users in counts.items()]


class TestRoutingPolicies:
    def test_round_robin_cycles_in_order(self):
        policy = RoundRobinRouting()
        view = loads({"b": 0, "a": 0, "c": 0})
        picks = [policy.route(f"k{i}", view) for i in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_least_loaded_joins_shortest_queue(self):
        policy = LeastLoadedRouting()
        assert policy.route("k", loads({"a": 3, "b": 1, "c": 2})) == "b"
        # Ties break by remote load, then id.
        view = [ServerLoad("b", 1, 5.0), ServerLoad("a", 1, 9.0)]
        assert policy.route("k", view) == "b"

    def test_power_of_two_is_deterministic_per_seed(self):
        view = loads({f"s{i}": i for i in range(6)})
        first = [PowerOfTwoRouting(seed=7).route(f"k{i}", view) for i in range(20)]
        second = [PowerOfTwoRouting(seed=7).route(f"k{i}", view) for i in range(20)]
        assert first == second
        assert PowerOfTwoRouting(seed=7).route("k", loads({"only": 9})) == "only"

    def test_affinity_is_stable_and_key_partitioned(self):
        policy = FingerprintAffinityRouting()
        view = loads({"a": 0, "b": 0, "c": 0, "d": 0})
        keys = [f"fingerprint-{i}" for i in range(40)]
        first = {key: policy.route(key, view) for key in keys}
        second = {key: policy.route(key, view) for key in keys}
        assert first == second
        assert len(set(first.values())) > 1  # keys actually spread

    def test_affinity_removal_only_remaps_dead_servers_keys(self):
        policy = FingerprintAffinityRouting()
        full = loads({"a": 0, "b": 0, "c": 0, "d": 0})
        keys = [f"fingerprint-{i}" for i in range(60)]
        before = {key: policy.route(key, full) for key in keys}
        survivors = [server for server in full if server.server_id != "a"]
        after = {key: policy.route(key, survivors) for key in keys}
        for key in keys:
            if before[key] != "a":
                assert after[key] == before[key]
            else:
                assert after[key] != "a"

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing_policy("random-walk")


class TestFleetAdmission:
    def test_affinity_hit_rate_matches_single_server(
        self, fleet_profile, arrival_trace
    ):
        """Acceptance: 4-server affinity hit rate within 10% of 1 server."""
        single = make_fleet(fleet_profile, RoundRobinRouting(), servers=1)
        replay(single, arrival_trace, fleet_profile)
        sharded = make_fleet(fleet_profile, FingerprintAffinityRouting())
        replay(sharded, arrival_trace, fleet_profile)

        single_rate = single.stats().cache_hit_rate
        sharded_rate = sharded.stats().cache_hit_rate
        assert single_rate == pytest.approx((REQUESTS - POOL_SIZE) / REQUESTS)
        assert sharded_rate >= single_rate - 0.10

    def test_power_of_two_keeps_load_balanced(self, fleet_profile, arrival_trace):
        """Acceptance: max/mean admitted users <= 1.5 on a uniform trace."""
        fleet = make_fleet(fleet_profile, PowerOfTwoRouting(seed=3))
        replay(fleet, arrival_trace, fleet_profile)
        stats = fleet.stats()
        assert stats.users == REQUESTS
        assert stats.imbalance <= 1.5

    def test_consumption_aggregates_every_user(self, fleet_profile, arrival_trace):
        fleet = make_fleet(fleet_profile, RoundRobinRouting())
        replay(fleet, arrival_trace, fleet_profile)
        consumption = fleet.total_consumption()
        assert set(consumption.per_user) == {uid for uid, _ in arrival_trace}
        assert consumption.energy > 0
        assert consumption.time > 0

    def test_duplicate_user_is_rejected_fleet_wide(self, fleet_profile):
        fleet = make_fleet(fleet_profile, LeastLoadedRouting(), users=2)
        app = synthesize_application("dup", n_functions=15, seed=5)
        device = MobileDevice("u1", profile=fleet_profile.device)
        fleet.admit(device, app)
        with pytest.raises(ValueError, match="already admitted"):
            fleet.admit(device, app)

    def test_cache_hits_skip_replanning(self, fleet_profile):
        fleet = make_fleet(fleet_profile, FingerprintAffinityRouting(), users=3)
        app = synthesize_application("popular", n_functions=20, seed=9)
        admissions = [
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
            for i in range(3)
        ]
        assert [admission.cache_hit for admission in admissions] == [False, True, True]
        servers = {admission.server_id for admission in admissions}
        assert len(servers) == 1  # affinity pinned the app to one server

    def test_rebalance_flattens_affinity_skew(self, fleet_profile):
        fleet = make_fleet(fleet_profile, FingerprintAffinityRouting(), servers=3, users=6)
        app = synthesize_application("hot", n_functions=20, seed=2)
        for i in range(6):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        assert fleet.stats().imbalance == pytest.approx(3.0)
        before = fleet.total_consumption()
        moves = fleet.rebalance()
        stats = fleet.stats()
        assert moves == 4
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.users == 6
        after = fleet.total_consumption()
        assert set(after.per_user) == set(before.per_user)


class TestDegradedMode:
    def test_full_fleet_degrades_to_all_local(self, fleet_profile):
        fleet = make_fleet(
            fleet_profile, LeastLoadedRouting(), servers=2, users=4,
            max_users_per_server=1,
        )
        app = synthesize_application("deg", n_functions=15, seed=4)
        admissions = [
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
            for i in range(4)
        ]
        assert [admission.degraded for admission in admissions] == [
            False, False, True, True,
        ]
        stats = fleet.stats()
        assert stats.degraded_users == 2
        consumption = fleet.total_consumption()
        assert len(consumption.per_user) == 4
        assert consumption.combined() > 0
        assert consumption.combined() < float("inf")

    def test_all_local_breakdown_matches_formulas(self, fleet_profile):
        app = synthesize_application("local", n_functions=12, seed=6)
        device = MobileDevice("u", profile=fleet_profile.device)
        breakdown = all_local_breakdown(device, app)
        expected_time = app.total_computation() / device.compute_capacity
        assert breakdown.local_time == pytest.approx(expected_time)
        assert breakdown.energy == pytest.approx(expected_time * device.power_compute)
        assert breakdown.transmission_energy == 0.0
        assert breakdown.remote_time == 0.0


class TestFailover:
    def test_outage_reassigns_every_user(self, fleet_profile, arrival_trace):
        """Acceptance: killing 1 of N servers loses no user, E+T finite."""
        fleet = make_fleet(fleet_profile, RoundRobinRouting())
        replay(fleet, arrival_trace, fleet_profile)
        victim = fleet.load_stats()[0].server_id
        drained_expected = fleet.servers[victim].users

        report = handle_outage(fleet, ServerOutage(time=1.0, server_id=victim))

        assert report.drained_users == drained_expected
        assert report.lost_users == 0
        assert not report.degraded
        assert set(report.reassigned.values()) <= set(fleet.servers)
        assert victim not in fleet.servers
        consumption = report.consumption_after
        assert len(consumption.per_user) == REQUESTS
        assert 0 < consumption.combined() < float("inf")

    def test_outage_with_no_capacity_degrades_users(self, fleet_profile):
        fleet = make_fleet(
            fleet_profile, LeastLoadedRouting(), servers=2, users=4,
            max_users_per_server=2,
        )
        app = synthesize_application("edge", n_functions=15, seed=8)
        for i in range(4):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        victim = sorted(fleet.servers)[0]
        report = handle_outage(fleet, ServerOutage(time=0.5, server_id=victim))
        assert report.drained_users == 2
        assert report.lost_users == 0
        assert len(report.degraded) == 2  # the survivor was already full
        assert len(report.consumption_after.per_user) == 4
        assert report.consumption_after.combined() < float("inf")

    def test_killing_every_server_leaves_all_users_local(self, fleet_profile):
        fleet = make_fleet(fleet_profile, RoundRobinRouting(), servers=3, users=6)
        app = synthesize_application("blackout", n_functions=15, seed=10)
        for i in range(6):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        outages = [
            ServerOutage(time=float(index), server_id=server_id)
            for index, server_id in enumerate(sorted(fleet.servers))
        ]
        reports = apply_outages(fleet, outages)
        assert sum(report.lost_users for report in reports) == 0
        assert not fleet.servers
        stats = fleet.stats()
        assert stats.degraded_users == 6
        consumption = fleet.total_consumption()
        assert len(consumption.per_user) == 6
        assert 0 < consumption.combined() < float("inf")

    def test_outage_requires_known_server(self, fleet_profile):
        fleet = make_fleet(fleet_profile, RoundRobinRouting(), servers=2, users=2)
        with pytest.raises(KeyError, match="unknown or already-dead"):
            handle_outage(fleet, ServerOutage(time=0.0, server_id="edge-99"))

    def test_server_outage_fault_validation(self):
        with pytest.raises(ValueError, match="server_id"):
            ServerOutage(time=1.0)


class TestFleetBenchCLI:
    def test_smoke_path(self, capsys):
        from repro.cli import main

        assert main(["fleet-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fleet-bench: 16 requests over 4 distinct apps" in out
        for policy in ("round-robin", "least-loaded", "power-of-two", "affinity"):
            assert policy in out
        assert "single server (equal total capacity)" in out

    def test_unknown_policy_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["fleet-bench", "--smoke", "--policies", "magic"]) == 2
        assert "unknown routing policies" in capsys.readouterr().err
