"""Unit tests for the planner result types and config validation."""

import pytest

from repro.core.config import PlannerConfig
from repro.core.results import CutOutcome, PlanResult, UserPlan
from repro.mec.greedy import GreedyResult
from repro.mec.scheme import OffloadingScheme
from repro.mec.system import SystemConsumption
from repro.mec.energy import ConsumptionBreakdown


def make_plan(**overrides) -> UserPlan:
    defaults = dict(
        app_name="app",
        parts=[frozenset({"a"}), frozenset({"b", "c"})],
        bisections=[({0}, {1})],
        compressed_nodes=10,
        compressed_edges=20,
        original_nodes=100,
        original_edges=300,
        cut_values=[5.0, 2.5],
        propagation_rounds=3,
    )
    defaults.update(overrides)
    return UserPlan(**defaults)


class TestUserPlan:
    def test_compression_ratio(self):
        assert make_plan().compression_ratio == pytest.approx(10.0)

    def test_compression_ratio_degenerate(self):
        assert make_plan(compressed_nodes=0).compression_ratio == 1.0

    def test_total_cut_value(self):
        assert make_plan().total_cut_value == pytest.approx(7.5)
        assert make_plan(cut_values=[]).total_cut_value == 0.0


class TestPlanResult:
    def make_result(self) -> PlanResult:
        consumption = SystemConsumption()
        consumption.per_user["u1"] = ConsumptionBreakdown(
            local_energy=3.0,
            transmission_energy=1.0,
            local_time=2.0,
            remote_time=1.0,
            transmission_time=0.5,
            waiting_time=0.0,
        )
        scheme = OffloadingScheme(remote_functions={"u1": {"b", "c"}})
        greedy = GreedyResult(scheme=scheme, consumption=consumption)
        return PlanResult(
            scheme=scheme,
            consumption=consumption,
            user_plans={"u1": make_plan()},
            greedy=greedy,
            planning_seconds=0.25,
            strategy_name="spectral",
        )

    def test_energy_time_accessors(self):
        result = self.make_result()
        assert result.energy == pytest.approx(4.0)
        assert result.time == pytest.approx(3.5)

    def test_summary_contents(self):
        summary = self.make_result().summary()
        assert "[spectral]" in summary
        assert "offloaded 2 functions" in summary
        assert "0.250s" in summary

    def test_scheme_accessors(self):
        scheme = self.make_result().scheme
        assert scheme.offload_count("u1") == 2
        assert scheme.offload_count("ghost") == 0
        assert scheme.total_offloaded == 2


class TestCutOutcome:
    def test_holds_partition(self):
        outcome = CutOutcome({"a"}, {"b"}, 2.0)
        assert outcome.part_one == {"a"}
        assert outcome.cut_value == 2.0


class TestPlannerConfigDefaults:
    def test_reproduction_defaults(self):
        config = PlannerConfig()
        assert config.initial_placement_mode == "anchored"
        assert config.multiway_parts == 2
        assert not config.skip_compression
        assert not config.refine_cuts
        assert config.objective.energy == 1.0
        assert config.objective.time == 1.0

    def test_frozen(self):
        config = PlannerConfig()
        with pytest.raises(Exception):
            config.skip_compression = True  # type: ignore[misc]
