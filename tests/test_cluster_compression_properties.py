"""Tests for the cluster-distributed compressor and simulation properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CompressionConfig, GraphCompressor
from repro.compression.labels import AbsoluteThreshold
from repro.distributed import ClusterCompressor, LocalCluster
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.callgraph.model import FunctionCallGraph
from repro.simulation import simulate_scheme
from repro.workloads.netgen import NetgenConfig, netgen_graph
from tests.test_properties_graphs import weighted_graphs


class TestClusterCompressor:
    def test_matches_serial_compressor(self):
        graph = netgen_graph(NetgenConfig(n_nodes=240, n_edges=1100, seed=21))
        serial = GraphCompressor().compress(graph)
        with LocalCluster(workers=2) as cluster:
            distributed = ClusterCompressor(cluster).compress(graph)
        assert serial.compressed.clusters == distributed.compressed.clusters
        assert (
            serial.compressed.graph.edge_list()
            == distributed.compressed.graph.edge_list()
        )

    def test_one_task_per_component(self):
        graph = netgen_graph(NetgenConfig(n_nodes=240, n_edges=1100, seed=22))
        from repro.graphs.components import connected_components

        n_components = len(connected_components(graph))
        with LocalCluster(workers=2) as cluster:
            ClusterCompressor(cluster).compress(graph)
            assert cluster.stats.tasks == n_components
            assert cluster.stats.stages == 1

    def test_survives_transient_task_failures(self):
        """With retries on, a flaky first execution must not change the
        result (propagation tasks are pure)."""
        graph = netgen_graph(NetgenConfig(n_nodes=120, n_edges=500, seed=23))
        expected = GraphCompressor().compress(graph).compressed.clusters

        fail_budget = {"left": 2}
        original_run = None

        from repro.compression.propagation import LabelPropagation

        original_run = LabelPropagation.run

        def flaky_run(self, subgraph):
            if fail_budget["left"] > 0:
                fail_budget["left"] -= 1
                raise OSError("executor lost")
            return original_run(self, subgraph)

        LabelPropagation.run = flaky_run
        try:
            with LocalCluster(workers=1, max_task_retries=3) as cluster:
                result = ClusterCompressor(cluster).compress(graph)
                assert cluster.stats.retries == 2
        finally:
            LabelPropagation.run = original_run
        assert result.compressed.clusters == expected

    def test_empty_graph(self):
        with LocalCluster(workers=1) as cluster:
            result = ClusterCompressor(cluster).compress(WeightedGraph())
        assert result.compressed.graph.node_count == 0

    @given(weighted_graphs(), st.floats(0.0, 25.0))
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence_with_serial(self, graph, threshold):
        config = CompressionConfig(threshold_rule=AbsoluteThreshold(threshold))
        serial = GraphCompressor(config).compress(graph)
        with LocalCluster(workers=2) as cluster:
            distributed = ClusterCompressor(cluster, config).compress(graph)
        assert serial.compressed.clusters == distributed.compressed.clusters


@st.composite
def simulation_inputs(draw):
    """Random single-user workload: (local, remote, cut, capacities)."""
    return dict(
        local=draw(st.floats(0.0, 500.0)),
        remote=draw(st.floats(0.1, 500.0)),
        cut=draw(st.floats(0.0, 200.0)),
        server=draw(st.floats(1.0, 1000.0)),
        bandwidth=draw(st.floats(1.0, 500.0)),
    )


@given(simulation_inputs())
@settings(max_examples=50, deadline=None)
def test_simulated_energy_matches_analytic_everywhere(params):
    """Property: under healthy conditions, measured energy == formulas
    (1)-(5) for arbitrary workload magnitudes."""
    profile = DeviceProfile(
        compute_capacity=10.0,
        power_compute=2.0,
        power_transmit=5.0,
        bandwidth=params["bandwidth"],
    )
    fcg = FunctionCallGraph("prop")
    fcg.add_function("pin", computation=params["local"], offloadable=False)
    fcg.add_function("ship", computation=params["remote"])
    if params["cut"] > 0:
        fcg.add_data_flow("pin", "ship", params["cut"])
    app = PartitionedApplication("u1", fcg, [{"ship"}])
    system = MECSystem(
        EdgeServer(params["server"]),
        [UserContext(MobileDevice("u1", profile=profile), fcg)],
    )
    placement = {"u1": {0}}
    report = simulate_scheme(system, app and {"u1": app}, placement)
    analytic = system.evaluate_placement({"u1": app}, placement)
    assert np.isclose(report.total_energy, analytic.energy, rtol=1e-9, atol=1e-9)
    timeline = report.timeline("u1")
    breakdown = analytic.per_user["u1"]
    assert np.isclose(timeline.local_energy, breakdown.local_energy)
    assert np.isclose(timeline.transmission_energy, breakdown.transmission_energy)


@given(simulation_inputs(), st.floats(0.0, 50.0))
@settings(max_examples=40, deadline=None)
def test_simulation_timeline_invariants(params, arrival):
    """Structural invariants hold for arbitrary inputs and arrivals."""
    profile = DeviceProfile(
        compute_capacity=10.0,
        power_compute=2.0,
        power_transmit=5.0,
        bandwidth=params["bandwidth"],
    )
    fcg = FunctionCallGraph("prop")
    fcg.add_function("pin", computation=params["local"], offloadable=False)
    fcg.add_function("ship", computation=params["remote"])
    if params["cut"] > 0:
        fcg.add_data_flow("pin", "ship", params["cut"])
    app = PartitionedApplication("u1", fcg, [{"ship"}])
    system = MECSystem(
        EdgeServer(params["server"]),
        [UserContext(MobileDevice("u1", profile=profile), fcg)],
    )
    report = simulate_scheme(
        system, {"u1": app}, {"u1": {0}}, arrivals={"u1": arrival}
    )
    t = report.timeline("u1")
    # Causality chain.
    assert t.upload_start == pytest.approx(arrival)
    assert t.upload_finish >= t.upload_start - 1e-9
    assert t.service_start >= t.upload_finish - 1e-9
    assert t.service_finish >= t.service_start - 1e-9
    assert report.makespan == pytest.approx(t.completion)
    # Non-negative measures.
    assert t.waiting >= 0.0
    assert t.sojourn >= 0.0
    assert report.server_busy <= report.makespan + 1e-9
