"""Tests for utility modules: RNG, stopwatch, validation."""

import time

import pytest

from repro.utils.rng import RandomSource, derive_seed
from repro.utils.timer import Stopwatch, time_call
from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive


class TestRNG:
    def test_derive_seed_stable(self):
        assert derive_seed(7, "netgen", 250) == derive_seed(7, "netgen", 250)

    def test_derive_seed_sensitive_to_labels(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7) != derive_seed(8)

    def test_spawn_independent_streams(self):
        root = RandomSource(1)
        a = root.spawn("left")
        b = root.spawn("right")
        seq_a = [a.randint(0, 1000) for _ in range(5)]
        seq_b = [b.randint(0, 1000) for _ in range(5)]
        assert seq_a != seq_b
        # Re-spawning reproduces the stream.
        fresh = RandomSource(1).spawn("left")
        assert [fresh.randint(0, 1000) for _ in range(5)] == seq_a

    def test_uniform_in_range(self):
        rng = RandomSource(2)
        for _ in range(100):
            x = rng.uniform(3.0, 7.0)
            assert 3.0 <= x <= 7.0

    def test_choice_and_sample(self):
        rng = RandomSource(3)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sample = rng.sample(items, 2)
        assert len(sample) == 2
        assert len(set(sample)) == 2

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(4).choice([])

    def test_shuffled_preserves_elements(self):
        rng = RandomSource(5)
        original = list(range(20))
        shuffled = rng.shuffled(original)
        assert sorted(shuffled) == original
        assert original == list(range(20))  # input untouched

    def test_default_seed(self):
        a = RandomSource()
        b = RandomSource()
        assert a.randint(0, 10**9) == b.randint(0, 10**9)


class TestStopwatch:
    def test_context_manager_laps(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.laps == 1
        assert watch.elapsed >= 0.009

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_mean_lap(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch:
                pass
        assert watch.laps == 3
        assert watch.mean_lap == pytest.approx(watch.elapsed / 3)
        assert Stopwatch().mean_lap == 0.0

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.laps == 0
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_time_call(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError, match="x must be > 0"):
            ensure_positive(0.0, "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")

    def test_ensure_in_range(self):
        assert ensure_in_range(0.5, 0.0, 1.0, "x") == 0.5
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0, "x")
