"""Smoke tests: the shipped examples must keep running.

Examples are the first thing a new user executes; a broken example is a
broken front door.  Each test imports the example module and runs its
``main()`` with stdout captured, asserting the advertised headline output
appears.  Only the fast examples run here (the full-evaluation script is
exercised through its underlying ``generate_markdown_report`` tests).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Import and execute one example's main(); returns captured stdout."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    assert spec and spec.loader
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "[spectral]" in out
        assert "compression:" in out
        assert "offloaded" in out

    def test_baseline_comparison(self, capsys):
        out = run_example("baseline_comparison.py", capsys)
        for algorithm in ("spectral", "maxflow", "kl"):
            assert f"[{algorithm}]" in out
        assert "normalized" in out

    def test_coupling_comparison(self, capsys):
        out = run_example("coupling_comparison.py", capsys)
        assert "loose" in out
        assert "tight" in out
        assert "E+T (all local)" in out

    def test_fault_injection(self, capsys):
        out = run_example("fault_injection.py", capsys)
        assert "healthy" in out
        assert "server loses half capacity" in out

    def test_energy_time_tradeoff(self, capsys):
        out = run_example("energy_time_tradeoff.py", capsys)
        assert "Pareto frontier" in out
        assert "Algorithm 2 (E+T)" in out

    def test_scenario_comparison(self, capsys):
        out = run_example("scenario_comparison.py", capsys)
        assert "five conditions" in out
        assert "x baseline" in out

    def test_spark_style_cluster(self, capsys):
        # This example has no main(); it runs under __main__ only, so
        # exercise its pieces directly.
        from repro.distributed import LocalCluster

        spec = importlib.util.spec_from_file_location(
            "example_spark", EXAMPLES_DIR / "spark_style_cluster.py"
        )
        assert spec and spec.loader
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        with LocalCluster(workers=2) as cluster:
            module.tour_rdd(cluster)
            module.tour_block_matrix(cluster)
        out = capsys.readouterr().out
        assert "sum of even squares" in out
        assert "matvec error" in out

    def test_all_examples_have_docstrings_and_main_guard(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            text = path.read_text()
            assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), path
            assert '__name__ == "__main__"' in text, path
