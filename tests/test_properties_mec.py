"""Property-based tests: MEC model, allocation policies and greedy."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callgraph.model import FunctionCallGraph
from repro.mec.admission import (
    EqualShareAllocation,
    FCFSQueueAllocation,
    ProportionalShareAllocation,
    QueueTheoreticAllocation,
)
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.greedy import generate_offloading_scheme
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext

POLICIES = [
    EqualShareAllocation(),
    ProportionalShareAllocation(),
    FCFSQueueAllocation(),
    QueueTheoreticAllocation(horizon=10.0),
]


@st.composite
def loads(draw):
    """A dict of user id -> non-negative remote load."""
    n = draw(st.integers(1, 8))
    return {
        f"u{i}": draw(st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False))
        for i in range(n)
    }


@st.composite
def partitioned_app(draw, user_id: str = "u1"):
    """A random call graph pre-sliced into 2-5 parts."""
    n_parts = draw(st.integers(2, 5))
    fcg = FunctionCallGraph("prop")
    fcg.add_function("pin", computation=draw(st.floats(1.0, 50.0)), offloadable=False)
    part_sets: list[set[str]] = []
    fn_index = 0
    for p in range(n_parts):
        size = draw(st.integers(1, 3))
        members: set[str] = set()
        for _ in range(size):
            name = f"f{fn_index}"
            fn_index += 1
            fcg.add_function(name, computation=draw(st.floats(1.0, 100.0)))
            members.add(name)
        part_sets.append(members)
    # Sprinkle flows: pin <-> first member of each part, chains across parts.
    for p, members in enumerate(part_sets):
        first = sorted(members)[0]
        if draw(st.booleans()):
            fcg.add_data_flow("pin", first, draw(st.floats(0.5, 30.0)))
        if p > 0:
            prev = sorted(part_sets[p - 1])[0]
            fcg.add_data_flow(prev, first, draw(st.floats(0.5, 30.0)))
    return PartitionedApplication(user_id, fcg, part_sets)


@given(loads())
@settings(max_examples=60, deadline=None)
def test_allocation_policies_basic_invariants(remote_loads):
    server = EdgeServer(total_capacity=100.0)
    for policy in POLICIES:
        allocation = policy.allocate(server, remote_loads)
        for user, load in remote_loads.items():
            capacity = allocation.capacity_for(user)
            waiting = allocation.waiting_for(user)
            assert waiting >= 0.0
            assert capacity >= 0.0
            if load > 1e-12:  # policies treat smaller loads as idle
                assert capacity > 0.0, f"{type(policy).__name__} starved {user}"
            elif load == 0.0:
                assert capacity == 0.0
                assert waiting == 0.0


@given(loads())
@settings(max_examples=60, deadline=None)
def test_share_policies_never_exceed_server_capacity(remote_loads):
    server = EdgeServer(total_capacity=100.0)
    for policy in (EqualShareAllocation(), ProportionalShareAllocation()):
        allocation = policy.allocate(server, remote_loads)
        assert sum(allocation.capacity.values()) <= server.total_capacity + 1e-9


@given(loads())
@settings(max_examples=60, deadline=None)
def test_fcfs_waiting_is_cumulative_backlog(remote_loads):
    server = EdgeServer(total_capacity=100.0)
    allocation = FCFSQueueAllocation().allocate(server, remote_loads)
    active = sorted(u for u, load in remote_loads.items() if load > 1e-12)
    backlog = 0.0
    for user in active:
        assert allocation.waiting_for(user) == np.float64(backlog) / 100.0
        backlog += remote_loads[user]


@given(partitioned_app())
@settings(max_examples=40, deadline=None)
def test_cut_weight_subadditive_under_union(app):
    """Placing two groups remotely can never cross more traffic than the
    sum of placing each alone (shared internal edges stop crossing)."""
    all_ids = {p.part_id for p in app.parts}
    half = {p for p in all_ids if p % 2 == 0}
    other = all_ids - half
    together = app.cut_weight(all_ids)
    assert together <= app.cut_weight(half) + app.cut_weight(other) + 1e-9


@given(partitioned_app())
@settings(max_examples=40, deadline=None)
def test_weights_conserved_by_placement(app):
    """local + remote computation is placement-invariant."""
    all_ids = {p.part_id for p in app.parts}
    subsets = [set(), {0}, all_ids, {p for p in all_ids if p % 2 == 1}]
    totals = {app.local_weight(s) + app.remote_weight(s) for s in subsets}
    assert len(totals) == 1 or max(totals) - min(totals) < 1e-9


@given(partitioned_app(), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_greedy_history_monotone_and_feasible(app, policy_index):
    device = MobileDevice(
        "u1",
        profile=DeviceProfile(
            compute_capacity=15.0, power_compute=1.0, power_transmit=5.0, bandwidth=80.0
        ),
    )
    system = MECSystem(
        EdgeServer(total_capacity=200.0),
        [UserContext(device, app.call_graph)],
        allocation=POLICIES[policy_index],
    )
    all_ids = {p.part_id for p in app.parts}
    bisections = [({min(all_ids)}, all_ids - {min(all_ids)})]
    result = generate_offloading_scheme(system, {"u1": app}, {"u1": bisections})
    # Monotone objective trajectory.
    for earlier, later in zip(result.history, result.history[1:]):
        assert later <= earlier + 1e-9
    # Pinned function never offloaded.
    assert "pin" not in result.scheme.remote_for("u1")
    # Final consumption consistent with an independent evaluation.
    recomputed = system.evaluate_placement({"u1": app}, result.remote_parts)
    assert np.isclose(result.consumption.combined(), recomputed.combined())


@given(partitioned_app())
@settings(max_examples=25, deadline=None)
def test_greedy_lazy_equals_exhaustive(app):
    device = MobileDevice(
        "u1",
        profile=DeviceProfile(
            compute_capacity=15.0, power_compute=1.0, power_transmit=5.0, bandwidth=80.0
        ),
    )
    system = MECSystem(EdgeServer(200.0), [UserContext(device, app.call_graph)])
    all_ids = {p.part_id for p in app.parts}
    bisections = [(set(), all_ids)]
    lazy = generate_offloading_scheme(system, {"u1": app}, {"u1": bisections})
    full = generate_offloading_scheme(
        system, {"u1": app}, {"u1": bisections}, exhaustive=True
    )
    assert np.isclose(
        lazy.consumption.combined(), full.consumption.combined(), rtol=1e-9
    )
