"""Tests for user mobility and handover orchestration (repro.mobility).

Covers the mobility models (bounded, seeded, wall-clock-free), the
live-position field and its geo-placement bridge, the time-varying
latency map, the three handover disciplines, and their integration
with :meth:`~repro.fleet.fleet.EdgeFleet.tick`: every executed
handover is priced through the migration cost model, recorded in the
telemetry, and replayed identically from the same seed.  The satellite
fixes ride along: the :class:`~repro.fleet.latency.StaticLatencyMap`
validation regression and fingerprint-affinity stickiness under
drifting RTTs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    EdgeFleet,
    FingerprintAffinityRouting,
    GeoLatencyMap,
    MigrationCostModel,
    StaticLatencyMap,
    TickReport,
)
from repro.fleet.routing import ServerLoad
from repro.mec.devices import MobileDevice
from repro.mobility import (
    HANDOVER_POLICIES,
    MOBILITY_MODELS,
    MobileLatencyMap,
    MobilityField,
    NearestHandover,
    NeverHandover,
    PredictiveHandover,
    RandomWaypoint,
    VehicularCorridor,
    evenly_spaced_stations,
    make_handover_policy,
    make_mobility_model,
)
from repro.workloads import synthesize_application
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import call_graph_from_dict, call_graph_to_dict


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        quick_profile(), distinct_graphs=4, multiuser_graph_size=30
    )


def mobile_fleet(
    fleet_profile,
    *,
    servers=4,
    users=6,
    speed=0.05,
    rtt_scale=2.0,
    seed=7,
    **kwargs,
):
    """Corridor fleet: hot app on every user, stations along the road."""
    model = VehicularCorridor(speed=speed, lanes=1, seed=seed)
    station_ids = [f"edge-{i:02d}" for i in range(servers)]
    field = MobilityField(model, evenly_spaced_stations(station_ids))
    kwargs.setdefault("routing", FingerprintAffinityRouting(latency_slack=0.05))
    kwargs.setdefault("migration", MigrationCostModel(handoff_latency=0.05))
    fleet = EdgeFleet(
        capacities=[2000.0] * servers,
        latency=MobileLatencyMap(field, seconds_per_unit=rtt_scale),
        **kwargs,
    )
    app = synthesize_application("hot", n_functions=20, seed=2)
    for i in range(users):
        fleet.admit(
            MobileDevice(f"u{i}", profile=fleet_profile.device),
            call_graph_from_dict(call_graph_to_dict(app)),
        )
    return fleet


def owner_of(fleet, user_id):
    for server_id, server in fleet.servers.items():
        if user_id in server.admitted:
            return server_id
    raise AssertionError(f"{user_id} not admitted anywhere")


class TestMobilityModels:
    def test_waypoint_stays_on_the_unit_square(self):
        model = RandomWaypoint(speed=0.3, seed=11)
        for user in ("a", "b", "c"):
            model.place(user)
            for _ in range(200):
                x, y = model.advance(user, 0.5)
                assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_waypoint_is_deterministic_per_seed(self):
        first = RandomWaypoint(speed=0.1, seed=3)
        second = RandomWaypoint(speed=0.1, seed=3)
        other = RandomWaypoint(speed=0.1, seed=4)
        trace_a = [first.advance("u", 0.7) for _ in range(20)]
        trace_b = [second.advance("u", 0.7) for _ in range(20)]
        trace_c = [other.advance("u", 0.7) for _ in range(20)]
        assert trace_a == trace_b
        assert trace_a != trace_c

    def test_waypoint_placement_is_admission_order_independent(self):
        first = RandomWaypoint(seed=5)
        second = RandomWaypoint(seed=5)
        first.place("u1")
        first.place("u2")
        second.place("u2")
        second.place("u1")
        assert first.place("u1") == second.place("u1")
        assert first.place("u2") == second.place("u2")

    def test_waypoint_pause_consumes_time_in_place(self):
        model = RandomWaypoint(speed=1e9, pause_time=10.0, seed=0)
        model.place("u")
        # At astronomic speed the first dt lands on a waypoint and the
        # remainder goes into the pause; the next small steps must not
        # move the user at all until the pause drains.
        arrived = model.advance("u", 1.0)
        assert model.advance("u", 2.0) == arrived
        assert model.advance("u", 3.0) == arrived

    def test_zero_speed_is_stationary(self):
        model = RandomWaypoint(speed=0.0, seed=1)
        start = model.place("u")
        assert model.advance("u", 100.0) == start

    def test_corridor_drives_along_a_fixed_lane_and_wraps(self):
        model = VehicularCorridor(speed=0.3, lanes=2, seed=9)
        for user in ("a", "b", "c", "d"):
            x0, y0 = model.place(user)
            positions = [model.advance(user, 1.0) for _ in range(10)]
            assert all(y == y0 for _, y in positions)
            assert all(0.0 <= x < 1.0 for x, _ in positions)

    def test_corridor_direction_alternates_per_lane(self):
        model = VehicularCorridor(speed=0.01, lanes=2, seed=0)
        seen = set()
        for i in range(20):
            user = f"u{i}"
            x0, y0 = model.place(user)
            x1, _ = model.advance(user, 1.0)
            delta = (x1 - x0 + 1.0) % 1.0
            east = delta < 0.5
            lane = round(y0 * 2 - 0.5)
            assert east == (lane % 2 == 0)
            seen.add(lane)
        assert seen == {0, 1}

    def test_models_validate_their_parameters(self):
        with pytest.raises(ValueError, match="speed"):
            RandomWaypoint(speed=-0.1)
        with pytest.raises(ValueError, match="pause_time"):
            RandomWaypoint(pause_time=-1.0)
        with pytest.raises(ValueError, match="lanes"):
            VehicularCorridor(lanes=0)
        with pytest.raises(ValueError, match="dt"):
            VehicularCorridor().advance("u", -1.0)

    def test_registry_dispatch(self):
        assert set(MOBILITY_MODELS) == {"corridor", "waypoint"}
        assert make_mobility_model("waypoint", pause_time=2.0).pause_time == 2.0
        assert make_mobility_model("corridor", lanes=3).lanes == 3
        with pytest.raises(ValueError, match="unknown mobility model"):
            make_mobility_model("teleport")


class TestMobilityField:
    def test_stations_are_evenly_spaced(self):
        stations = evenly_spaced_stations(["a", "b", "c", "d"])
        assert [x for x, _ in stations.values()] == [0.125, 0.375, 0.625, 0.875]
        assert all(y == 0.5 for _, y in stations.values())

    def test_users_are_placed_lazily_and_advance_together(self):
        model = VehicularCorridor(speed=0.25, lanes=1, seed=1)
        field = MobilityField(model, evenly_spaced_stations(["s0", "s1"]))
        before = field.position("u1")
        field.ensure_user("u2")
        field.advance(1.0)
        assert field.ticks == 1
        assert field.now == 1.0
        moved = field.position("u1")
        assert moved != before
        # Stations never move.
        assert field.position("s0") == (0.25, 0.5)

    def test_user_ids_may_not_collide_with_stations(self):
        model = VehicularCorridor(seed=0)
        field = MobilityField(model, evenly_spaced_stations(["s0"]))
        with pytest.raises(ValueError, match="server site"):
            field.ensure_user("s0")

    def test_nearest_server_follows_the_distance(self):
        model = VehicularCorridor(speed=0.0, seed=0)
        field = MobilityField(
            model, {"near": (0.1, 0.5), "far": (0.9, 0.5)}, users=()
        )
        field._positions["u"] = (0.2, 0.5)  # pin a known position
        assert field.nearest_server("u") == "near"
        assert field.distance("u", "near") == pytest.approx(0.1)

    def test_from_geo_agrees_with_the_geo_placement(self):
        # Satellite: the mobility field must seed stations from the
        # same GeoLatencyMap placement the static fleet used, so a
        # geo experiment upgraded to mobility keeps its geography.
        geo = GeoLatencyMap(
            {"edge-00": (0.25, 0.75)}, seconds_per_unit=0.2, seed=3
        )
        server_ids = ["edge-00", "edge-01", "edge-02"]
        model = VehicularCorridor(seed=0)
        field = MobilityField.from_geo(model, geo, server_ids)
        for server_id in server_ids:
            assert field.position(server_id) == geo.position(server_id)
        assert field.position("edge-00") == (0.25, 0.75)


class TestMobileLatencyMap:
    def test_rtt_is_base_plus_scaled_distance(self):
        model = VehicularCorridor(speed=0.0, seed=0)
        field = MobilityField(model, {"s": (0.0, 0.5)})
        field._positions["u"] = (0.5, 0.5)
        latency = MobileLatencyMap(field, base_rtt=0.01, seconds_per_unit=0.2)
        assert latency.rtt("u", "s") == pytest.approx(0.01 + 0.2 * 0.5)

    def test_rtt_changes_as_users_move(self):
        model = VehicularCorridor(speed=0.1, lanes=1, seed=2)
        field = MobilityField(model, evenly_spaced_stations(["s0", "s1"]))
        latency = MobileLatencyMap(field, seconds_per_unit=1.0)
        before = latency.rtt("u", "s0")
        latency.advance(1.0)
        assert latency.rtt("u", "s0") != before

    def test_from_geo_copies_the_geo_parameters(self):
        geo = GeoLatencyMap(base_rtt=0.02, seconds_per_unit=0.4, seed=1)
        model = VehicularCorridor(seed=0)
        latency = MobileLatencyMap.from_geo(model, geo, ["s0", "s1"])
        assert latency.base_rtt == 0.02
        assert latency.seconds_per_unit == 0.4
        assert latency.field.position("s0") == geo.position("s0")

    def test_validates_parameters(self):
        model = VehicularCorridor(seed=0)
        field = MobilityField(model, {"s": (0.0, 0.0)})
        with pytest.raises(ValueError, match="base_rtt"):
            MobileLatencyMap(field, base_rtt=-0.1)
        with pytest.raises(ValueError, match="seconds_per_unit"):
            MobileLatencyMap(field, seconds_per_unit=-1.0)


class TestHandoverPolicies:
    def test_never_stays_put(self):
        policy = NeverHandover()
        assert policy.target("u", "s0", {"s0": 0.9, "s1": 0.1}) is None

    def test_nearest_moves_to_the_lowest_rtt(self):
        policy = NearestHandover()
        assert policy.target("u", "s0", {"s0": 0.3, "s1": 0.1}) == "s1"
        assert policy.target("u", "s0", {"s0": 0.1, "s1": 0.3}) is None

    def test_nearest_hysteresis_absorbs_marginal_gains(self):
        policy = NearestHandover(hysteresis=0.25)
        assert policy.target("u", "s0", {"s0": 0.3, "s1": 0.1}) is None
        assert policy.target("u", "s0", {"s0": 0.4, "s1": 0.1}) == "s1"

    def test_nearest_breaks_ties_by_server_id(self):
        policy = NearestHandover()
        assert policy.target("u", "s9", {"s9": 0.5, "b": 0.1, "a": 0.1}) == "a"

    def test_predictive_falls_back_to_observed_rtts(self):
        # Without telemetry the forecast degenerates to the observation:
        # stay while under the threshold, flee when over it.
        policy = PredictiveHandover(threshold=0.5)
        assert policy.target("u", "s0", {"s0": 0.4, "s1": 0.1}) is None
        assert policy.target("u", "s0", {"s0": 0.6, "s1": 0.1}) == "s1"

    def test_registry_dispatch(self):
        assert set(HANDOVER_POLICIES) == {"never", "nearest", "predictive"}
        assert make_handover_policy("nearest", hysteresis=0.2).hysteresis == 0.2
        assert make_handover_policy("predictive", threshold=1.0).threshold == 1.0
        with pytest.raises(ValueError, match="unknown handover policy"):
            make_handover_policy("psychic")
        with pytest.raises(ValueError, match="hysteresis"):
            NearestHandover(hysteresis=-0.1)


class TestFleetTick:
    def test_tick_advances_the_field_and_reports(self, fleet_profile):
        fleet = mobile_fleet(fleet_profile, handover=NearestHandover())
        report = fleet.tick(1.0)
        assert isinstance(report, TickReport)
        assert report.tick == 1
        assert report.dt == 1.0
        assert fleet.latency.field.ticks == 1
        assert fleet.metrics.counter("fleet_ticks").value == 1

    def test_tick_without_a_policy_never_hands_over(self, fleet_profile):
        fleet = mobile_fleet(fleet_profile, handover=None)
        for _ in range(8):
            report = fleet.tick(1.0)
            assert report.handovers == []
        assert fleet.metrics.counter("fleet_handovers").value == 0

    def test_handover_moves_the_user_and_charges_the_ledger(self, fleet_profile):
        fleet = mobile_fleet(fleet_profile, handover=NearestHandover())
        executed = []
        for _ in range(12):
            executed.extend(fleet.tick(1.0).handovers)
        assert executed, "a corridor run this long must hand someone over"
        decision = executed[-1]
        assert owner_of(fleet, decision.user_id) == decision.target
        assert decision.rtt_after < decision.rtt_before
        assert decision.gain == pytest.approx(
            decision.rtt_before - decision.rtt_after
        )
        migration = fleet.metrics.histogram("fleet_migration_cost")
        assert migration.count >= len(executed)
        debt = fleet.migration_debt
        assert decision.user_id in debt
        assert debt[decision.user_id].time > 0

    def test_tick_report_prices_the_moves(self, fleet_profile):
        fleet = mobile_fleet(fleet_profile, handover=NearestHandover())
        charged = 0.0
        moves = 0
        for _ in range(12):
            report = fleet.tick(1.0)
            charged += report.migration_cost
            moves += report.moves
        assert moves == fleet.metrics.counter("fleet_handovers").value
        assert charged > 0

    def test_same_seed_replays_the_same_handover_sequence(self, fleet_profile):
        def sequence(seed):
            fleet = mobile_fleet(
                fleet_profile, handover=NearestHandover(hysteresis=0.1), seed=seed
            )
            moves = []
            for _ in range(10):
                moves.extend(
                    (d.tick, d.user_id, d.source, d.target)
                    for d in fleet.tick(1.0).handovers
                )
            return moves

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(13)

    def test_static_latency_maps_simply_stand_still(self, fleet_profile):
        fleet = EdgeFleet(2, 2000.0, latency=StaticLatencyMap(default=0.1))
        app = synthesize_application("hot", n_functions=20, seed=2)
        fleet.admit(MobileDevice("u0", profile=fleet_profile.device), app)
        report = fleet.tick(1.0)
        assert report.handovers == []
        assert report.tick == 1

    def test_tick_rejects_bad_dt(self, fleet_profile):
        fleet = mobile_fleet(fleet_profile)
        with pytest.raises(ValueError, match="dt"):
            fleet.tick(-1.0)


class TestMobilityExperiment:
    def test_sweep_reports_every_cell(self, fleet_profile):
        from repro.experiments.fleet import run_fleet_mobility_experiment

        comparison = run_fleet_mobility_experiment(
            n_users=6,
            n_servers=3,
            profile=fleet_profile,
            speeds=(0.05,),
            handovers=("never", "nearest", "nearest:0.4"),
            ticks=6,
            seed=3,
        )
        assert comparison.speeds == (0.05,)
        assert comparison.handovers == ("never", "nearest", "nearest:0.4")
        assert len(comparison.rows) == 3
        never = comparison.row(0.05, "never")
        assert never.handovers == 0
        assert never.migration_cost == 0.0
        assert never.handover_sequence == ()
        for row in comparison.rows:
            assert row.users == 6
            assert row.mean_rtt >= 0
            assert 0 < row.mean_combined < float("inf")
        with pytest.raises(KeyError, match="no row"):
            comparison.row(0.05, "teleport")

    def test_sweep_is_seed_deterministic(self, fleet_profile):
        from repro.experiments.fleet import run_fleet_mobility_experiment

        def sequences(seed):
            comparison = run_fleet_mobility_experiment(
                n_users=6,
                n_servers=3,
                profile=fleet_profile,
                speeds=(0.08,),
                handovers=("nearest",),
                ticks=6,
                seed=seed,
            )
            return [row.handover_sequence for row in comparison.rows]

        assert sequences(5) == sequences(5)


class TestSatelliteFixes:
    def test_static_map_rejects_negative_pair_masked_by_server_entry(self):
        # Regression: the old validation merged both tables keyed by
        # server id, so a valid per-server RTT could mask a negative
        # (user, server) pair sharing that id.
        with pytest.raises(ValueError, match=r"pair \('u1', 'edge-00'\)"):
            StaticLatencyMap(
                {("u1", "edge-00"): -0.2}, {"edge-00": 0.05}
            )

    def test_static_map_rejects_negative_server_rtt(self):
        with pytest.raises(ValueError, match="server 'edge-01'"):
            StaticLatencyMap(None, {"edge-00": 0.1, "edge-01": -0.1})

    def test_affinity_sticks_within_slack_and_flees_beyond_it(self):
        # Satellite: cache affinity under a drifting link.  The home
        # server keeps the key while its RTT stays within the slack of
        # the best link, and loses it once the drift exceeds it.
        policy = FingerprintAffinityRouting(latency_slack=0.1)

        def snapshot(rtts):
            return [
                ServerLoad(server_id=sid, users=0, rtt=rtt)
                for sid, rtt in rtts.items()
            ]

        home = policy.route("app-key", snapshot({"s0": 0.0, "s1": 0.0}))
        other = "s1" if home == "s0" else "s0"
        drifting = policy.route(
            "app-key", snapshot({home: 0.09, other: 0.0})
        )
        assert drifting == home
        drifted = policy.route(
            "app-key", snapshot({home: 0.25, other: 0.0})
        )
        assert drifted == other
