"""Tests for online user admission and the online/offline regret."""

import pytest

from repro.core.baselines import spectral_cut_strategy
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.online import OnlinePlanner, regret_vs_offline
from repro.workloads.applications import synthesize_application

PROFILE = DeviceProfile(
    compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
)


def arrivals(n: int, base_seed: int = 61):
    out = []
    for k in range(n):
        device = MobileDevice(f"u{k+1:02d}", profile=PROFILE)
        app = synthesize_application(f"app-{k}", n_functions=50, seed=base_seed + k)
        out.append((device, app))
    return out


class TestOnlinePlanner:
    def test_admissions_accumulate(self):
        planner = OnlinePlanner(EdgeServer(600.0), spectral_cut_strategy())
        for device, app in arrivals(3):
            record = planner.admit(device, app)
            assert record.consumption_after.energy > 0.0
        assert len(planner.state.users) == 3
        assert len(planner.state.history) == 3

    def test_duplicate_admission_rejected(self):
        planner = OnlinePlanner(EdgeServer(600.0), spectral_cut_strategy())
        device, app = arrivals(1)[0]
        planner.admit(device, app)
        with pytest.raises(ValueError, match="already admitted"):
            planner.admit(device, app)

    def test_existing_placements_never_migrate(self):
        planner = OnlinePlanner(EdgeServer(600.0), spectral_cut_strategy())
        batch = arrivals(3)
        placements: dict[str, set[int]] = {}
        for device, app in batch:
            planner.admit(device, app)
            # Every previously admitted user's placement is unchanged.
            for uid, parts in placements.items():
                assert planner.state.remote_parts[uid] == parts
            placements = {
                uid: set(parts) for uid, parts in planner.state.remote_parts.items()
            }

    def test_consumption_query_without_users(self):
        planner = OnlinePlanner(EdgeServer(600.0), spectral_cut_strategy())
        with pytest.raises(ValueError, match="no users"):
            planner.current_consumption()

    def test_later_users_see_server_load(self):
        """A starved server makes later newcomers offload less."""
        generous = OnlinePlanner(EdgeServer(10_000.0), spectral_cut_strategy())
        starved = OnlinePlanner(EdgeServer(30.0), spectral_cut_strategy())
        batch = arrivals(4)
        for device, app in batch:
            generous.admit(
                MobileDevice(device.device_id, profile=PROFILE), app
            )
            starved.admit(MobileDevice(device.device_id, profile=PROFILE), app)
        last = batch[-1][0].device_id
        generous_offloaded = generous.state.history[-1].offloaded_functions
        starved_offloaded = starved.state.history[-1].offloaded_functions
        assert starved_offloaded <= generous_offloaded
        assert generous.state.history[-1].user_id == last


class TestRegret:
    def test_offline_never_worse(self):
        rows = regret_vs_offline(
            EdgeServer(400.0), spectral_cut_strategy(), arrivals(3)
        )
        assert len(rows) == 3
        for user_id, online_cost, offline_cost in rows:
            # Offline replans everything, so it can only match or beat the
            # frozen online placements (up to greedy tie noise).
            assert offline_cost <= online_cost * 1.02, user_id

    def test_first_arrival_has_no_regret(self):
        """With one user the two planners solve the identical problem."""
        rows = regret_vs_offline(
            EdgeServer(400.0), spectral_cut_strategy(), arrivals(1)
        )
        _, online_cost, offline_cost = rows[0]
        assert online_cost == pytest.approx(offline_cost, rel=1e-9)

    def test_costs_grow_with_arrivals(self):
        rows = regret_vs_offline(
            EdgeServer(400.0), spectral_cut_strategy(), arrivals(3)
        )
        online_costs = [r[1] for r in rows]
        assert online_costs == sorted(online_costs)
