"""Tests for the spectral machinery: eigensolvers, Fiedler, bisection."""

import numpy as np
import pytest

from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    two_cluster_graph,
)
from repro.graphs.laplacian import laplacian_matrix
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.bisection import spectral_bisect
from repro.spectral.clustering import kmeans, spectral_clustering
from repro.spectral.eigen import (
    dominant_eigenpair,
    gershgorin_bound,
    smallest_nontrivial_laplacian_eigenpair,
)
from repro.spectral.fiedler import FiedlerMethod, FiedlerSolver
from repro.spectral.lanczos import lanczos_smallest_nontrivial
from repro.spectral.theory import (
    cut_value_quadratic_form,
    indicator_vector,
    rayleigh_quotient,
)


def reference_fiedler(graph) -> tuple[float, np.ndarray]:
    lap = laplacian_matrix(graph)
    values, vectors = np.linalg.eigh(lap)
    return float(values[1]), vectors[:, 1]


class TestPowerIteration:
    def test_dominant_eigenpair_matches_numpy(self):
        rng = np.random.default_rng(1)
        m = rng.standard_normal((8, 8))
        matrix = m @ m.T  # symmetric PSD
        value, vector = dominant_eigenpair(matrix)
        expected = np.linalg.eigvalsh(matrix)[-1]
        assert value == pytest.approx(expected, rel=1e-6)
        assert np.linalg.norm(matrix @ vector - value * vector) < 1e-5

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            dominant_eigenpair(np.ones((2, 3)))

    def test_gershgorin_bounds_spectrum(self):
        g = random_connected_graph(10, 18, seed=2)
        lap = laplacian_matrix(g)
        bound = gershgorin_bound(lap)
        assert np.linalg.eigvalsh(lap)[-1] <= bound + 1e-9


class TestFiedlerFromScratch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_power_matches_dense(self, seed):
        g = random_connected_graph(14, 25, seed=seed)
        lap = laplacian_matrix(g)
        expected_value, _ = reference_fiedler(g)
        value, vector = smallest_nontrivial_laplacian_eigenpair(lap)
        assert value == pytest.approx(expected_value, rel=1e-4, abs=1e-6)
        residual = lap @ vector - value * vector
        assert np.linalg.norm(residual) < 1e-4

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lanczos_matches_dense(self, seed):
        g = random_connected_graph(20, 40, seed=seed)
        lap = laplacian_matrix(g)
        expected_value, _ = reference_fiedler(g)
        value, vector = lanczos_smallest_nontrivial(lap)
        assert value == pytest.approx(expected_value, rel=1e-6, abs=1e-8)
        assert np.linalg.norm(lap @ vector - value * vector) < 1e-6

    def test_vector_orthogonal_to_constant(self):
        g = random_connected_graph(12, 20, seed=5)
        lap = laplacian_matrix(g)
        _, vector = lanczos_smallest_nontrivial(lap)
        assert abs(vector.sum()) < 1e-8

    def test_single_node(self):
        assert smallest_nontrivial_laplacian_eigenpair(np.zeros((1, 1)))[0] == 0.0
        assert lanczos_smallest_nontrivial(np.zeros((1, 1)))[0] == 0.0

    def test_edgeless_graph(self):
        value, vector = smallest_nontrivial_laplacian_eigenpair(np.zeros((4, 4)))
        assert value == 0.0
        assert abs(vector.sum()) < 1e-12

    def test_disconnected_lambda2_zero(self):
        g = WeightedGraph()
        for n in range(4):
            g.add_node(n)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        lap = laplacian_matrix(g)
        value, _ = lanczos_smallest_nontrivial(lap)
        assert value == pytest.approx(0.0, abs=1e-9)


class TestFiedlerSolver:
    @pytest.mark.parametrize("method", ["dense", "sparse", "power", "lanczos"])
    def test_all_backends_agree(self, method):
        g = random_connected_graph(18, 35, seed=4)
        expected_value, _ = reference_fiedler(g)
        result = FiedlerSolver(method=method).solve(g)
        assert result.value == pytest.approx(expected_value, rel=1e-4, abs=1e-6)

    def test_auto_switches_by_size(self):
        solver = FiedlerSolver(dense_cutoff=5)
        small = solver.solve(path_graph(4))
        large = solver.solve(path_graph(10))
        assert small.method == "dense"
        assert large.method == "sparse"

    def test_known_path_value(self):
        # lambda_2 of the unweighted path P_n is 2(1 - cos(pi/n)).
        n = 8
        result = FiedlerSolver(method="dense").solve(path_graph(n))
        expected = 2.0 * (1.0 - np.cos(np.pi / n))
        assert result.value == pytest.approx(expected, rel=1e-9)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            FiedlerSolver().solve(WeightedGraph())

    def test_single_node_trivial(self):
        g = WeightedGraph()
        g.add_node("x")
        result = FiedlerSolver().solve(g)
        assert result.value == 0.0
        assert result.method == "trivial"

    def test_entry_lookup(self):
        result = FiedlerSolver().solve(path_graph(4))
        assert result.entry(0) == pytest.approx(float(result.vector[0]))

    def test_matches_networkx_algebraic_connectivity(self):
        networkx = pytest.importorskip("networkx")
        g = random_connected_graph(16, 30, seed=7)
        nxg = networkx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        expected = networkx.algebraic_connectivity(nxg, weight="weight")
        result = FiedlerSolver(method="dense").solve(g)
        assert result.value == pytest.approx(expected, rel=1e-6)


class TestBisection:
    def test_two_clusters_separated(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=0.5)
        result = spectral_bisect(g)
        sides = {frozenset(result.part_one), frozenset(result.part_two)}
        assert sides == {frozenset(range(5)), frozenset(range(5, 10))}
        assert result.cut_value == pytest.approx(0.5)

    def test_cut_value_consistent_with_graph(self):
        g = random_connected_graph(15, 30, seed=8)
        result = spectral_bisect(g)
        assert result.cut_value == pytest.approx(g.cut_weight(result.part_one))

    def test_parts_partition_nodes(self):
        g = random_connected_graph(13, 22, seed=9)
        result = spectral_bisect(g)
        assert result.part_one | result.part_two == set(g.nodes())
        assert not result.part_one & result.part_two
        assert result.part_one and result.part_two

    def test_single_node_graph(self):
        g = WeightedGraph()
        g.add_node("x")
        result = spectral_bisect(g)
        assert result.part_one == {"x"}
        assert result.part_two == set()
        assert result.cut_value == 0.0

    def test_two_node_graph(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", weight=3.0)
        result = spectral_bisect(g)
        assert {len(result.part_one), len(result.part_two)} == {1}
        assert result.cut_value == 3.0

    def test_balanced_split_sizes(self):
        g = random_connected_graph(20, 40, seed=10)
        result = spectral_bisect(g, balanced=True)
        assert abs(len(result.part_one) - len(result.part_two)) <= 2

    def test_theorem1_lambda2_leq_cut(self):
        """lambda_2 lower-bounds the scaled cut (Theorem 1's direction)."""
        g = random_connected_graph(12, 24, seed=11)
        lap = laplacian_matrix(g)
        lambda2 = float(np.linalg.eigvalsh(lap)[1])
        result = spectral_bisect(g)
        n = g.node_count
        k = len(result.part_one)
        # Normalised-cut form of the bound: cut >= lambda2 * k*(n-k)/n.
        assert result.cut_value >= lambda2 * k * (n - k) / n - 1e-9


class TestTheory:
    @pytest.mark.parametrize("d1,d2", [(1.0, -1.0), (2.0, 0.5), (3.0, -2.0)])
    def test_theorem2_identity(self, d1, d2):
        g = random_connected_graph(10, 20, seed=12)
        part = {0, 3, 5, 7}
        direct = g.cut_weight(part)
        quadratic = cut_value_quadratic_form(g, part, d1, d2)
        assert quadratic == pytest.approx(direct, rel=1e-9)

    def test_indicator_requires_distinct_values(self):
        with pytest.raises(ValueError):
            indicator_vector(["a"], {"a"}, 1.0, 1.0)

    def test_rayleigh_quotient_bounds(self):
        g = random_connected_graph(9, 15, seed=13)
        lap = laplacian_matrix(g)
        values = np.linalg.eigvalsh(lap)
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(9)
            r = rayleigh_quotient(lap, x)
            assert values[0] - 1e-9 <= r <= values[-1] + 1e-9

    def test_rayleigh_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            rayleigh_quotient(np.eye(3), np.zeros(3))


class TestClustering:
    def test_kmeans_separates_blobs(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 0.1, size=(20, 2))
        b = rng.normal(5.0, 0.1, size=(20, 2))
        labels = kmeans(np.vstack([a, b]), k=2, seed=1)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_kmeans_k_geq_n(self):
        labels = kmeans(np.zeros((3, 2)), k=5)
        assert len(labels) == 3

    def test_kmeans_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0)

    def test_spectral_clustering_two_clusters(self):
        g = two_cluster_graph(5, intra_weight=10.0, bridge_weight=0.2)
        assignment = spectral_clustering(g, k=2, seed=1)
        left = {assignment[n] for n in range(5)}
        right = {assignment[n] for n in range(5, 10)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_spectral_clustering_k1(self):
        g = path_graph(5)
        assignment = spectral_clustering(g, k=1)
        assert set(assignment.values()) == {0}
