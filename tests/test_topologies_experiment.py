"""Tests for the topology robustness experiment module."""

import pytest

from repro.experiments.topologies import (
    TOPOLOGIES,
    build_topology_graph,
    run_topology_experiment,
    winners_by_topology,
)
from repro.graphs.validation import check_graph_invariants
from repro.workloads.profiles import ExperimentProfile

TINY = ExperimentProfile(
    name="tiny", graph_sizes=(80,), user_counts=(2,), multiuser_graph_size=80
)


class TestBuildTopologyGraph:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_every_topology_builds(self, topology):
        graph = build_topology_graph(topology, 80, 350, seed=1)
        assert graph.node_count == 80
        check_graph_invariants(graph)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology_graph("torus", 80, 350, seed=1)

    def test_density_roughly_matched(self):
        """Each model gets roughly the requested edge budget."""
        target = 350
        for topology in TOPOLOGIES:
            graph = build_topology_graph(topology, 80, target, seed=2)
            assert 0.4 * target <= graph.edge_count <= 1.6 * target, topology


class TestRunExperiment:
    def test_full_grid(self):
        rows = run_topology_experiment(TINY)
        assert len(rows) == len(TOPOLOGIES) * 3
        combos = {(r.topology, r.algorithm) for r in rows}
        assert len(combos) == len(rows)

    def test_subset_selection(self):
        rows = run_topology_experiment(
            TINY, topologies=("netgen",), algorithms=("spectral",)
        )
        assert len(rows) == 1
        assert rows[0].topology == "netgen"
        assert rows[0].algorithm == "spectral"

    def test_consumption_consistency(self):
        rows = run_topology_experiment(TINY, topologies=("netgen",))
        for row in rows:
            assert row.total_energy == pytest.approx(
                row.local_energy + row.transmission_energy
            )
            assert row.combined >= row.total_energy  # E+T >= E

    def test_winners_map(self):
        rows = run_topology_experiment(TINY, topologies=("netgen", "erdos-renyi"))
        winners = winners_by_topology(rows)
        assert set(winners) == {"netgen", "erdos-renyi"}
        assert all(w in ("spectral", "maxflow", "kl") for w in winners.values())
