"""Tests for the bytecode IR, static extractor and offloadability rules."""

import pytest

from repro.callgraph.bytecode import (
    ApplicationBinary,
    FunctionBytecode,
    Instruction,
    Opcode,
)
from repro.callgraph.extractor import extract_call_graph
from repro.callgraph.model import FunctionCallGraph
from repro.callgraph.offloadability import OffloadabilityPolicy, classify_offloadability


def figure1_binary() -> ApplicationBinary:
    """The paper's Figure 1 program: f1 calls f2 (|a|=10) and f3 (|b|=8);
    f2 calls f4 (|c|=12) and f5 (|d|=7)."""
    binary = ApplicationBinary(name="figure1", entry_point="f1")
    f1 = binary.define("f1")
    f1.compute(5.0).call("f2", 0.0).call("f3", 0.0)
    f2 = binary.define("f2")
    f2.compute(8.0).call("f4", 0.0).call("f5", 0.0).return_data(10.0)
    binary.define("f3").compute(6.0).return_data(8.0)
    binary.define("f4").compute(9.0).return_data(12.0)
    binary.define("f5").compute(4.0).return_data(7.0)
    return binary


class TestInstruction:
    def test_call_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            Instruction(Opcode.CALL, 5.0)

    def test_non_call_rejects_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.COMPUTE, 5.0, target="f2")

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.COMPUTE, -1.0)

    def test_device_binding_flags(self):
        assert Instruction(Opcode.SENSOR_READ).touches_device
        assert Instruction(Opcode.IO_ACCESS).touches_device
        assert Instruction(Opcode.UI_RENDER).touches_device
        assert not Instruction(Opcode.COMPUTE, 1.0).touches_device


class TestBinary:
    def test_builder_chain(self):
        fn = FunctionBytecode("f")
        fn.compute(3.0).call("g", 2.0).return_data(1.0).sensor_read()
        assert fn.total_compute == 3.0
        assert fn.call_targets() == ["g"]
        assert fn.touches_device

    def test_duplicate_function_rejected(self):
        binary = ApplicationBinary("app")
        binary.define("f")
        with pytest.raises(ValueError, match="already defined"):
            binary.define("f")

    def test_validate_dangling_call(self):
        binary = ApplicationBinary("app", entry_point="f")
        binary.define("f").call("ghost", 1.0)
        with pytest.raises(ValueError, match="undefined function"):
            binary.validate()

    def test_validate_missing_entry(self):
        binary = ApplicationBinary("app", entry_point="nope")
        binary.define("f")
        with pytest.raises(ValueError, match="entry point"):
            binary.validate()


class TestExtractor:
    def test_figure1_edges(self):
        fcg = extract_call_graph(figure1_binary())
        g = fcg.graph
        # Return payloads map to Figure 1's edge weights.
        assert g.edge_weight("f1", "f2") == pytest.approx(10.0)
        assert g.edge_weight("f1", "f3") == pytest.approx(8.0)
        assert g.edge_weight("f2", "f4") == pytest.approx(12.0)
        assert g.edge_weight("f2", "f5") == pytest.approx(7.0)
        assert g.edge_count == 4

    def test_node_weights_are_compute(self):
        fcg = extract_call_graph(figure1_binary())
        assert fcg.info("f2").computation == 8.0
        assert fcg.graph.node_weight("f4") == 9.0

    def test_call_payload_accumulates_with_return(self):
        binary = ApplicationBinary("app", entry_point="main")
        binary.define("main").call("w", 5.0).call("w", 5.0)
        binary.define("w").compute(1.0).return_data(6.0)
        fcg = extract_call_graph(binary)
        # Two call payloads (10) + return 6 split over 2 calls, both to main.
        assert fcg.graph.edge_weight("main", "w") == pytest.approx(16.0)

    def test_return_split_between_two_callers(self):
        binary = ApplicationBinary("app", entry_point="a")
        binary.define("a").call("w", 1.0).call("b", 0.0)
        binary.define("b").call("w", 1.0)
        binary.define("w").compute(1.0).return_data(8.0)
        fcg = extract_call_graph(binary)
        assert fcg.graph.edge_weight("a", "w") == pytest.approx(1.0 + 4.0)
        assert fcg.graph.edge_weight("b", "w") == pytest.approx(1.0 + 4.0)

    def test_entry_point_pinned_local(self):
        fcg = extract_call_graph(figure1_binary())
        assert not fcg.info("f1").offloadable
        assert fcg.info("f2").offloadable

    def test_invalid_binary_rejected(self):
        binary = ApplicationBinary("app", entry_point="f")
        binary.define("f").call("ghost", 1.0)
        with pytest.raises(ValueError):
            extract_call_graph(binary)

    def test_recursive_self_call_no_edge(self):
        binary = ApplicationBinary("app", entry_point="r")
        binary.define("r").compute(2.0).call("r", 5.0)
        fcg = extract_call_graph(binary)
        assert fcg.graph.edge_count == 0


class TestOffloadability:
    def test_sensor_pins_function(self):
        binary = ApplicationBinary("app", entry_point="main")
        binary.define("main").compute(1.0)
        binary.define("gps").sensor_read().compute(1.0)
        result = classify_offloadability(binary)
        assert not result["gps"]
        assert not result["main"]  # entry point

    def test_policy_disable_entry_pin(self):
        binary = ApplicationBinary("app", entry_point="main")
        binary.define("main").compute(1.0)
        policy = OffloadabilityPolicy(pin_entry_point=False)
        assert classify_offloadability(binary, policy)["main"]

    def test_explicit_pin_list(self):
        binary = ApplicationBinary("app", entry_point="main")
        binary.define("main").compute(1.0)
        binary.define("hot").compute(1.0)
        policy = OffloadabilityPolicy(pinned_names=frozenset({"hot"}))
        assert not classify_offloadability(binary, policy)["hot"]

    def test_traffic_ratio_pin(self):
        binary = ApplicationBinary("app", entry_point="main")
        binary.define("main").compute(1.0).call("chatty", 100.0)
        binary.define("chatty").compute(1.0)
        policy = OffloadabilityPolicy(max_traffic_ratio=10.0)
        assert not classify_offloadability(binary, policy)["chatty"]
        loose = OffloadabilityPolicy(max_traffic_ratio=1000.0)
        assert classify_offloadability(binary, loose)["chatty"]


class TestModel:
    def test_split_sets(self, small_call_graph):
        assert small_call_graph.unoffloadable_functions() == ["f1"]
        assert sorted(small_call_graph.offloadable_functions()) == [
            "f2",
            "f3",
            "f4",
            "f5",
        ]

    def test_offloadable_subgraph_removes_pinned(self, small_call_graph):
        sub = small_call_graph.offloadable_subgraph()
        assert not sub.has_node("f1")
        assert sub.node_count == 4
        # f1's edges vanish; f2-f4 and f2-f5 remain.
        assert sub.edge_count == 2

    def test_local_anchor_traffic(self, small_call_graph):
        # f2 talks to pinned f1 with weight 10; f3 with 8.
        assert small_call_graph.local_anchor_traffic({"f2"}) == 10.0
        assert small_call_graph.local_anchor_traffic({"f2", "f3"}) == 18.0
        assert small_call_graph.local_anchor_traffic({"f4"}) == 0.0

    def test_duplicate_function_rejected(self):
        fcg = FunctionCallGraph()
        fcg.add_function("f", computation=1.0)
        with pytest.raises(ValueError):
            fcg.add_function("f", computation=2.0)

    def test_components_listing(self):
        fcg = FunctionCallGraph()
        fcg.add_function("a", 1.0, component="ui")
        fcg.add_function("b", 1.0, component="worker")
        fcg.add_function("c", 1.0, component="ui")
        assert fcg.components() == ["ui", "worker"]
        assert fcg.component_members("ui") == ["a", "c"]

    def test_totals(self, small_call_graph):
        assert small_call_graph.total_computation() == 32.0
        assert small_call_graph.total_communication() == 37.0
