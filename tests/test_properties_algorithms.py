"""Property-based tests: compression, cuts and scheme invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.compressor import CompressionConfig, GraphCompressor
from repro.compression.labels import AbsoluteThreshold
from repro.graphs.laplacian import laplacian_matrix
from repro.graphs.validation import check_graph_invariants
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.edmonds_karp import edmonds_karp
from repro.mincut.stoer_wagner import stoer_wagner_min_cut
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.spectral.bisection import spectral_bisect
from tests.test_properties_graphs import weighted_graphs


@given(weighted_graphs(), st.floats(0.0, 25.0))
@settings(max_examples=50, deadline=None)
def test_compression_conserves_node_weight(graph, threshold):
    config = CompressionConfig(threshold_rule=AbsoluteThreshold(threshold))
    result = GraphCompressor(config).compress(graph)
    compressed = result.compressed
    assert np.isclose(
        compressed.graph.total_node_weight(), graph.total_node_weight()
    )
    check_graph_invariants(compressed.graph)


@given(weighted_graphs(), st.floats(0.0, 25.0))
@settings(max_examples=50, deadline=None)
def test_compression_clusters_partition_nodes(graph, threshold):
    config = CompressionConfig(threshold_rule=AbsoluteThreshold(threshold))
    compressed = GraphCompressor(config).compress(graph).compressed
    covered: set = set()
    for cluster in compressed.clusters:
        assert cluster, "empty cluster emitted"
        assert not covered & cluster, "clusters overlap"
        covered |= cluster
    assert covered == set(graph.nodes())


@given(weighted_graphs(), st.floats(0.0, 25.0))
@settings(max_examples=50, deadline=None)
def test_compression_only_merges_strong_connections(graph, threshold):
    """Nodes can only merge when joined by a path of edges heavier than
    the threshold (the label rule's guarantee)."""
    config = CompressionConfig(threshold_rule=AbsoluteThreshold(threshold))
    compressed = GraphCompressor(config).compress(graph).compressed
    # Build the strong-edge graph.
    strong = WeightedGraph()
    for node in graph.nodes():
        strong.add_node(node)
    for u, v, w in graph.edges():
        if w > threshold:
            strong.add_edge(u, v, weight=w)
    from repro.graphs.traversal import bfs_order

    for cluster in compressed.clusters:
        if len(cluster) == 1:
            continue
        first = next(iter(cluster))
        reachable = set(bfs_order(strong, first))
        assert cluster <= reachable, (
            f"cluster {cluster} not connected via strong edges"
        )


@given(weighted_graphs(), st.floats(0.0, 25.0))
@settings(max_examples=50, deadline=None)
def test_compressed_cut_realizable_in_original(graph, threshold):
    """Any cut of the compressed graph expands to a cut of the original
    graph with exactly the same weight (why cutting after compression is
    sound)."""
    config = CompressionConfig(threshold_rule=AbsoluteThreshold(threshold))
    compressed = GraphCompressor(config).compress(graph).compressed
    if compressed.graph.node_count < 2:
        return
    supers = compressed.graph.node_list()
    chosen = set(supers[: len(supers) // 2])
    compressed_cut = compressed.graph.cut_weight(chosen)
    original_cut = graph.cut_weight(compressed.expand(chosen))
    assert np.isclose(compressed_cut, original_cut)


@given(weighted_graphs(min_nodes=3))
@settings(max_examples=40, deadline=None)
def test_maxflow_min_cut_duality(graph):
    nodes = graph.node_list()
    source, sink = nodes[0], nodes[-1]
    result = edmonds_karp(graph, source, sink)
    assert np.isclose(result.value, graph.cut_weight(result.source_side))
    assert source in result.source_side
    assert sink in result.sink_side


@given(weighted_graphs(min_nodes=3))
@settings(max_examples=30, deadline=None)
def test_global_min_cut_leq_st_cut(graph):
    from repro.graphs.components import is_connected

    if not is_connected(graph):
        return
    nodes = graph.node_list()
    st_result = edmonds_karp(graph, nodes[0], nodes[-1])
    global_value, side = stoer_wagner_min_cut(graph)
    assert global_value <= st_result.value + 1e-9
    assert np.isclose(graph.cut_weight(side), global_value)


@given(weighted_graphs(min_nodes=4))
@settings(max_examples=30, deadline=None)
def test_kl_respects_balance_and_reports_true_cut(graph):
    result = kernighan_lin_bisect(graph)
    assert abs(len(result.part_one) - len(result.part_two)) <= 1
    assert np.isclose(result.cut_value, graph.cut_weight(result.part_one))


@given(weighted_graphs(min_nodes=2))
@settings(max_examples=30, deadline=None)
def test_spectral_bisection_is_partition(graph):
    result = spectral_bisect(graph)
    assert result.part_one | result.part_two == set(graph.nodes())
    assert not result.part_one & result.part_two
    assert result.part_one  # never empty
    if graph.node_count >= 2:
        assert result.part_two
    assert np.isclose(result.cut_value, graph.cut_weight(result.part_one))


@given(weighted_graphs(min_nodes=2))
@settings(max_examples=25, deadline=None)
def test_fiedler_value_matches_numpy(graph):
    from repro.spectral.fiedler import FiedlerSolver

    lap = laplacian_matrix(graph)
    expected = float(np.linalg.eigvalsh(lap)[1])
    result = FiedlerSolver(method="dense").solve(graph)
    assert np.isclose(result.value, max(expected, 0.0), rtol=1e-8, atol=1e-8)
