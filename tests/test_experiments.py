"""Tests for the experiment harness (Table I, Figs. 3-9 machinery)."""

import pytest

from repro.experiments.figures import (
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.reporting import normalize_rows, render_table
from repro.experiments.table1 import run_table1
from repro.experiments.timing import run_timing_experiment
from repro.workloads.netgen import NetgenConfig
from repro.workloads.profiles import ExperimentProfile

TINY = ExperimentProfile(
    name="tiny",
    graph_sizes=(60, 120),
    user_counts=(2, 4),
    multiuser_graph_size=60,
    distinct_graphs=2,
)


class TestTable1:
    def test_rows_shape(self):
        configs = [
            NetgenConfig(n_nodes=60, n_edges=250, seed=0),
            NetgenConfig(n_nodes=120, n_edges=500, seed=1),
        ]
        rows = run_table1(configs)
        assert [r.network for r in rows] == ["Network1", "Network2"]
        assert rows[0].function_number == 60
        assert rows[0].edge_number == 250

    def test_compression_reduces_scale(self):
        configs = [NetgenConfig(n_nodes=120, n_edges=500, seed=2)]
        row = run_table1(configs)[0]
        assert row.function_number_after < row.function_number
        assert row.edge_number_after < row.edge_number
        assert row.node_reduction > 0.5  # clustered workloads compress well

    def test_ratio_grows_with_size(self):
        """Table I: "with the increase of graph size, the compression
        ratio also increases" (checked on two quick sizes)."""
        configs = [
            NetgenConfig(n_nodes=100, n_edges=420, seed=3),
            NetgenConfig(n_nodes=1000, n_edges=4912, seed=3),
        ]
        rows = run_table1(configs)
        ratio_small = rows[0].function_number / rows[0].function_number_after
        ratio_large = rows[1].function_number / rows[1].function_number_after
        assert ratio_large > ratio_small


class TestEnergyExperiments:
    def test_single_user_rows_complete(self):
        rows = run_single_user_energy_experiment(TINY, repetitions=1)
        assert len(rows) == len(TINY.graph_sizes) * 3
        for row in rows:
            assert row.total_energy == pytest.approx(
                row.local_energy + row.transmission_energy
            )
            assert row.total_energy > 0.0

    def test_single_user_energy_grows_with_size(self):
        rows = run_single_user_energy_experiment(TINY, repetitions=1)
        by_alg = {}
        for row in rows:
            by_alg.setdefault(row.algorithm, []).append(row.total_energy)
        for series in by_alg.values():
            assert series[-1] > series[0]

    def test_multiuser_rows_complete(self):
        rows = run_multiuser_energy_experiment(TINY, repetitions=1)
        assert len(rows) == len(TINY.user_counts) * 3
        by_alg = {}
        for row in rows:
            by_alg.setdefault(row.algorithm, []).append(row.total_energy)
        for series in by_alg.values():
            assert series[-1] > series[0]  # grows with users

    def test_repetitions_recorded(self):
        rows = run_single_user_energy_experiment(
            ExperimentProfile(
                name="one", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
            ),
            repetitions=2,
        )
        assert all(row.repetitions == 2 for row in rows)

    def test_algorithm_subset(self):
        rows = run_single_user_energy_experiment(
            TINY, algorithms=("spectral",), repetitions=1
        )
        assert {row.algorithm for row in rows} == {"spectral"}


class TestTimingExperiment:
    def test_all_series_present(self):
        profile = ExperimentProfile(
            name="timing", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        rows = run_timing_experiment(profile, repeats=1)
        assert {row.algorithm for row in rows} == {
            "spectral-power",
            "maxflow",
            "kl",
            "spectral-spark",
        }
        for row in rows:
            assert row.seconds > 0.0
            assert row.repeats == 1

    def test_unknown_series_rejected(self):
        profile = ExperimentProfile(
            name="timing", graph_sizes=(60,), user_counts=(2,), multiuser_graph_size=60
        )
        with pytest.raises(ValueError, match="unknown timing series"):
            run_timing_experiment(profile, series=("warp-drive",))


class TestReporting:
    def test_normalize_by_max(self):
        rows = [1.0, 2.0, 4.0]
        normalized = normalize_rows(rows, lambda r: r)
        assert normalized == {0: 0.25, 1: 0.5, 2: 1.0}

    def test_normalize_all_zero(self):
        assert normalize_rows([0.0, 0.0], lambda r: r) == {0: 0.0, 1: 0.0}

    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["spectral", 0.123456], ["kl", 1.0]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.123" in text
        assert len(lines) == 4  # header + rule + 2 rows
