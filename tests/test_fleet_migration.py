"""Tests for fleet migration pricing and geo-latency (repro.fleet).

Covers the cost model itself (re-transmission at the link rate plus a
handoff, mapped onto the paper's consumption vocabulary), the latency
maps, and their integration with the fleet: cost-aware rebalancing only
moves when the modelled gain beats the migration price, every move —
rebalance or failover replay — lands in the moved user's ledger, RTT
lands in offloading users' waiting/remote time, and degraded users are
re-admitted when capacity returns.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    EdgeFleet,
    FingerprintAffinityRouting,
    GeoLatencyMap,
    LeastLoadedRouting,
    MigrationCostModel,
    StaticLatencyMap,
    ZeroLatency,
    handle_outage,
    make_latency_map,
)
from repro.mec.devices import MobileDevice
from repro.mec.energy import transmission_energy, transmission_time
from repro.simulation import ServerOutage
from repro.workloads import synthesize_application
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import call_graph_from_dict, call_graph_to_dict


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        quick_profile(), distinct_graphs=4, multiuser_graph_size=30
    )


def hot_fleet(fleet_profile, servers=3, users=6, **kwargs):
    """Affinity-pinned fleet: one hot app, every user on one server."""
    capacity = fleet_profile.server_capacity_per_user * users / servers
    fleet = EdgeFleet(
        servers, capacity, routing=FingerprintAffinityRouting(), **kwargs
    )
    app = synthesize_application("hot", n_functions=20, seed=2)
    for i in range(users):
        fleet.admit(
            MobileDevice(f"u{i}", profile=fleet_profile.device),
            call_graph_from_dict(call_graph_to_dict(app)),
        )
    return fleet


def owner_of(fleet, user_id):
    for server in fleet.servers.values():
        if user_id in server.admitted:
            return server
    raise AssertionError(f"{user_id} not admitted anywhere")


class TestLatencyMaps:
    def test_zero_latency_is_identically_zero(self):
        assert ZeroLatency().rtt("anyone", "anywhere") == 0.0

    def test_static_map_is_most_specific_first(self):
        lat = StaticLatencyMap(
            {("u1", "edge-00"): 0.2}, {"edge-00": 0.05, "edge-01": 0.07},
            default=0.01,
        )
        assert lat.rtt("u1", "edge-00") == 0.2  # exact pair wins
        assert lat.rtt("u2", "edge-00") == 0.05  # then the server base
        assert lat.rtt("u2", "edge-99") == 0.01  # then the default

    def test_static_map_rejects_negative_rtts(self):
        with pytest.raises(ValueError, match=">= 0"):
            StaticLatencyMap(default=-0.1)
        with pytest.raises(ValueError, match=">= 0"):
            StaticLatencyMap(server_rtt={"s": -1.0})

    def test_geo_map_uses_explicit_positions(self):
        geo = GeoLatencyMap(
            {"u": (0.0, 0.0), "s": (1.0, 0.0)},
            base_rtt=0.05, seconds_per_unit=0.2,
        )
        assert geo.rtt("u", "s") == pytest.approx(0.25)
        assert geo.rtt("u", "u") == pytest.approx(0.05)

    def test_geo_map_hash_placement_is_deterministic(self):
        first = GeoLatencyMap()
        second = GeoLatencyMap()
        pairs = [(f"u{i}", f"edge-{j:02d}") for i in range(5) for j in range(3)]
        assert [first.rtt(u, s) for u, s in pairs] == [
            second.rtt(u, s) for u, s in pairs
        ]
        assert all(first.rtt(u, s) >= 0 for u, s in pairs)
        xs = {first.position(u)[0] for u, _ in pairs}
        assert len(xs) > 1  # ids actually spread over the square

    def test_geo_map_validates_parameters(self):
        with pytest.raises(ValueError, match="base_rtt"):
            GeoLatencyMap(base_rtt=-0.1)
        with pytest.raises(ValueError, match="seconds_per_unit"):
            GeoLatencyMap(seconds_per_unit=-1.0)

    def test_registry_dispatch(self):
        assert isinstance(make_latency_map("none"), ZeroLatency)
        geo = make_latency_map("geo", base_rtt=0.1, seconds_per_unit=0.5)
        assert isinstance(geo, GeoLatencyMap)
        assert geo.base_rtt == 0.1
        with pytest.raises(ValueError, match="unknown latency model"):
            make_latency_map("teleport")


class TestMigrationCostModel:
    def test_cost_matches_the_transmission_formulas(self, fleet_profile):
        device = MobileDevice("u", profile=fleet_profile.device)
        model = MigrationCostModel(handoff_latency=0.5)
        cost = model.cost(device, 100.0)
        expected_t = transmission_time(100.0, device.bandwidth)
        expected_e = transmission_energy(100.0, device.power_transmit, device.bandwidth)
        assert cost.transmission_time == pytest.approx(expected_t)
        assert cost.transmission_energy == pytest.approx(expected_e)
        assert cost.time == pytest.approx(expected_t + 0.5)
        assert cost.energy == pytest.approx(expected_e)
        assert cost.combined() > 0

    def test_breakdown_preserves_the_ledger_invariants(self, fleet_profile):
        device = MobileDevice("u", profile=fleet_profile.device)
        cost = MigrationCostModel(handoff_latency=0.5).cost(device, 40.0)
        breakdown = cost.as_breakdown()
        assert breakdown.local_energy == 0.0
        assert breakdown.local_time == 0.0
        assert breakdown.transmission_time == pytest.approx(cost.transmission_time)
        assert breakdown.waiting_time == pytest.approx(0.5)
        # remote_time is waiting-inclusive (formula-(2) invariant), so the
        # breakdown's totals equal the cost's.
        assert breakdown.time == pytest.approx(cost.time)
        assert breakdown.energy == pytest.approx(cost.energy)

    def test_data_scale_rescales_the_payload(self, fleet_profile):
        device = MobileDevice("u", profile=fleet_profile.device)
        full = MigrationCostModel(data_scale=1.0).cost(device, 80.0)
        half = MigrationCostModel(data_scale=0.5).cost(device, 80.0)
        assert half.data_units == pytest.approx(full.data_units / 2)
        assert half.transmission_time == pytest.approx(full.transmission_time / 2)

    def test_free_model_prices_every_move_at_zero(self, fleet_profile):
        device = MobileDevice("u", profile=fleet_profile.device)
        cost = MigrationCostModel.free().cost(device, 1000.0)
        assert cost.combined() == 0.0
        assert cost.as_breakdown().time == 0.0

    def test_validation(self, fleet_profile):
        with pytest.raises(ValueError, match="handoff_latency"):
            MigrationCostModel(handoff_latency=-1.0)
        with pytest.raises(ValueError, match="data_scale"):
            MigrationCostModel(data_scale=-1.0)
        device = MobileDevice("u", profile=fleet_profile.device)
        with pytest.raises(ValueError, match="data_units"):
            MigrationCostModel().cost(device, -1.0)


class TestCostAwareRebalance:
    def test_unprofitable_moves_are_refused(self, fleet_profile):
        """With migration priced above any congestion gain, the
        cost-aware pass leaves the skew alone — and charges nothing."""
        fleet = hot_fleet(
            fleet_profile, migration=MigrationCostModel(handoff_latency=100.0)
        )
        before = fleet.stats().imbalance
        assert fleet.rebalance(cost_aware=True) == 0
        assert fleet.stats().imbalance == before
        assert not fleet.migration_debt
        assert fleet.metrics.counter("fleet_migrations").value == 0

    def test_profitable_moves_still_happen(self, fleet_profile):
        """With free migration, cost-aware rebalance flattens the skew
        as long as each move's modelled gain is positive."""
        fleet = hot_fleet(fleet_profile, migration=MigrationCostModel.free())
        skew = fleet.stats().imbalance
        moves = fleet.rebalance(cost_aware=True)
        assert moves > 0
        assert fleet.stats().imbalance < skew

    def test_cost_aware_moves_less_and_nets_no_worse(self, fleet_profile):
        """Acceptance: strictly fewer moves than the unconditional pass,
        at equal-or-better net E+T once every move is charged."""
        aware = hot_fleet(fleet_profile)
        free = hot_fleet(fleet_profile)
        aware_moves = aware.rebalance(cost_aware=True)
        free_moves = free.rebalance(cost_aware=False)
        assert free_moves > 0
        assert aware_moves < free_moves
        assert (
            aware.total_consumption().combined()
            <= free.total_consumption().combined()
        )


class TestMigrationAccounting:
    def test_rebalance_charges_every_move(self, fleet_profile):
        fleet = hot_fleet(fleet_profile)
        moves = fleet.rebalance(cost_aware=False)
        assert moves > 0
        debt = fleet.migration_debt
        assert debt  # the moved users owe something
        assert fleet.metrics.counter("fleet_migrations").value == moves
        handoff = fleet.migration.handoff_latency
        for user_id, owed in debt.items():
            assert owed.waiting_time >= handoff
            # The fleet ledger shows the server-side consumption plus the
            # user's accumulated migration debt, term by term.
            base = owner_of(fleet, user_id).current_consumption().per_user[user_id]
            total = fleet.total_consumption().per_user[user_id]
            assert total.waiting_time == pytest.approx(
                base.waiting_time + owed.waiting_time
            )
            assert total.transmission_time == pytest.approx(
                base.transmission_time + owed.transmission_time
            )
            assert total.transmission_energy == pytest.approx(
                base.transmission_energy + owed.transmission_energy
            )

    def test_outage_reassignment_is_charged(self, fleet_profile):
        fleet = EdgeFleet(
            3,
            fleet_profile.server_capacity_per_user * 6 / 3,
            routing=LeastLoadedRouting(),
        )
        for i in range(6):
            app = synthesize_application(f"app{i}", n_functions=20, seed=i)
            fleet.admit(MobileDevice(f"u{i}", profile=fleet_profile.device), app)
        victim = sorted(fleet.servers)[0]
        report = handle_outage(fleet, ServerOutage(time=1.0, server_id=victim))
        assert report.reassigned
        assert report.migration_cost > 0
        assert fleet.metrics.counter("fleet_migrations").value == len(report.reassigned)
        assert set(fleet.migration_debt) == set(report.reassigned)

    def test_free_model_restores_legacy_accounting(self, fleet_profile):
        charged = hot_fleet(fleet_profile)
        legacy = hot_fleet(fleet_profile, migration=MigrationCostModel.free())
        charged_moves = charged.rebalance(cost_aware=False)
        legacy_moves = legacy.rebalance(cost_aware=False)
        assert charged_moves == legacy_moves  # same mechanical flattening
        assert legacy.total_consumption().combined() < charged.total_consumption().combined()


class TestLatencyAccounting:
    def test_rtt_lands_in_waiting_and_remote_time(self, fleet_profile):
        app = synthesize_application("geo", n_functions=20, seed=3)
        rtt = 0.25

        def admit_one(latency):
            fleet = EdgeFleet(
                1, fleet_profile.server_capacity_per_user, latency=latency
            )
            fleet.admit(
                MobileDevice("u0", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
            return fleet.total_consumption().per_user["u0"]

        base = admit_one(None)
        geo = admit_one(StaticLatencyMap(server_rtt={"edge-00": rtt}))
        assert base.remote_time > 0  # the user actually offloads
        assert geo.remote_time == pytest.approx(base.remote_time + rtt)
        assert geo.waiting_time == pytest.approx(base.waiting_time + rtt)
        assert geo.local_time == pytest.approx(base.local_time)

    def test_local_only_users_pay_no_rtt(self, fleet_profile):
        app = synthesize_application(
            "pinned", n_functions=12, seed=7, sensor_fraction=1.0
        )
        fleet = EdgeFleet(
            1,
            fleet_profile.server_capacity_per_user,
            latency=StaticLatencyMap(default=5.0),
        )
        fleet.admit(MobileDevice("u0", profile=fleet_profile.device), app)
        breakdown = fleet.total_consumption().per_user["u0"]
        assert breakdown.remote_time == 0.0
        assert breakdown.waiting_time == 0.0


class TestDegradedRetry:
    def test_revive_readmits_degraded_users(self, fleet_profile):
        fleet = EdgeFleet(
            2,
            fleet_profile.server_capacity_per_user * 2,
            routing=LeastLoadedRouting(),
            max_users_per_server=2,
        )
        app = synthesize_application("retry", n_functions=15, seed=4)
        for i in range(4):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        victim = sorted(fleet.servers)[0]
        report = handle_outage(fleet, ServerOutage(time=1.0, server_id=victim))
        assert len(report.degraded) == 2  # the survivor was already full

        recovered = fleet.revive_server(victim)
        assert {admission.user_id for admission in recovered} == set(report.degraded)
        assert all(admission.server_id == victim for admission in recovered)
        assert fleet.stats().degraded_users == 0
        assert fleet.metrics.counter("fleet_degraded_recovered").value == 2
        for server_id, server in fleet.servers.items():
            assert (
                fleet.metrics.gauge(f"fleet_users_{server_id}").value == server.users
            )

    def test_retry_is_partial_when_capacity_stays_short(self, fleet_profile):
        fleet = EdgeFleet(
            1,
            fleet_profile.server_capacity_per_user,
            max_users_per_server=1,
        )
        app = synthesize_application("short", n_functions=15, seed=5)
        for i in range(2):
            fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device),
                call_graph_from_dict(call_graph_to_dict(app)),
            )
        assert fleet.stats().degraded_users == 1  # u1 found the fleet full
        (server_id,) = fleet.servers
        handle_outage(fleet, ServerOutage(time=1.0, server_id=server_id))
        assert fleet.stats().degraded_users == 2  # u0 drained with no survivors

        recovered = fleet.revive_server(server_id)
        # One slot, two candidates: the earliest-degraded user wins.
        assert [admission.user_id for admission in recovered] == ["u1"]
        assert fleet.stats().users == 1
        assert fleet.stats().degraded_users == 1
