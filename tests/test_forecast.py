"""Tests for forecast-driven proactive orchestration (repro.forecast).

Covers the subsystem bottom-up: the bounded :class:`TimeSeries`
primitive and its registry hookup, forecaster accuracy on synthetic
traces (AR fits linear drift exactly and beats EWMA there; ``"auto"``
picks the lowest-MAE model), the :class:`FleetTelemetry` record/predict
surface, SLA admission as constrained placement (boundary admits,
all-infeasible degrades or rejects, degraded SLA users recover through
``retry_degraded``), the shared hypothetical-deployment helper that
keeps cost-aware rebalancing and SLA feasibility on one modelled-latency
path, proactive rebalancing on a forecasted hotspot, and same-seed
determinism of the whole experiment sweep.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import make_planner
from repro.core.results import UserPlan
from repro.experiments.fleet import run_fleet_routing_experiment
from repro.fleet import (
    EdgeFleet,
    FingerprintAffinityRouting,
    ForecastRouting,
    GeoLatencyMap,
    ServerLoad,
    StaticLatencyMap,
    hypothetical_consumption,
    make_latency_map,
    modelled_user_cost,
)
from repro.forecast import (
    ARForecaster,
    AutoForecaster,
    EWMAForecaster,
    FleetTelemetry,
    NaiveForecaster,
    SLAReport,
    TimeSeries,
    UserSLA,
    make_forecaster,
    utilisation_series_name,
)
from repro.mec.devices import MobileDevice
from repro.service.metrics import MetricsRegistry
from repro.service.plan_cache import PlanCache
from repro.workloads import synthesize_application
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import call_graph_from_dict, call_graph_to_dict


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        quick_profile(), distinct_graphs=4, multiuser_graph_size=30
    )


def clone(app):
    return call_graph_from_dict(call_graph_to_dict(app))


def drift(n, slope=0.1, start=0.0):
    """A noiseless linear trend — AR(1)+intercept fits it exactly."""
    return [start + slope * t for t in range(n)]


# ----------------------------------------------------------------------
# TimeSeries + registry
# ----------------------------------------------------------------------
class TestTimeSeries:
    def test_window_wraps_and_count_keeps_totals(self):
        series = TimeSeries("util", window=4)
        for value in range(6):
            series.record(float(value))
        assert series.values() == [2.0, 3.0, 4.0, 5.0]  # oldest first
        assert len(series) == 4
        assert series.count == 6  # total ever, not just retained
        assert series.last == 5.0

    def test_empty_series(self):
        series = TimeSeries("empty")
        assert series.values() == []
        assert series.last is None
        assert len(series) == 0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            TimeSeries("bad", window=1)

    def test_registry_get_or_create_and_snapshot(self):
        registry = MetricsRegistry()
        series = registry.series("fleet_util_edge-00", window=8)
        assert registry.series("fleet_util_edge-00") is series
        series.record(0.2)
        series.record(0.4)
        snapshot = registry.snapshot()["series"]["fleet_util_edge-00"]
        assert snapshot["count"] == 2
        assert snapshot["last"] == pytest.approx(0.4)
        assert snapshot["mean"] == pytest.approx(0.3)
        assert "fleet_util_edge-00" in registry.render_report()


# ----------------------------------------------------------------------
# Forecasters
# ----------------------------------------------------------------------
class TestForecasters:
    def test_naive_is_persistence(self):
        model = NaiveForecaster()
        assert model.predict(1) == 0.0  # cold
        for value in (1.0, 3.0, 2.0):
            model.observe(value)
        assert model.predict(1) == 2.0
        assert model.predict(5) == 2.0

    def test_ewma_converges_on_a_level(self):
        model = EWMAForecaster(alpha=0.5)
        for _ in range(20):
            model.observe(0.6)
        assert model.predict(1) == pytest.approx(0.6)
        assert model.mae == pytest.approx(0.0)

    def test_ar_extrapolates_linear_drift_exactly(self):
        model = ARForecaster(order=1)
        for value in drift(20):
            model.observe(value)
        # history ends at 1.9; the trend continues 2.0, 2.1, 2.2, ...
        assert model.predict(1) == pytest.approx(2.0, abs=1e-6)
        assert model.predict(3) == pytest.approx(2.2, abs=1e-6)

    def test_ar_beats_ewma_on_drift(self):
        ar = ARForecaster(order=2)
        ewma = EWMAForecaster()
        for value in drift(40):
            ar.observe(value)
            ewma.observe(value)
        assert ar.mae < ewma.mae  # EWMA lags a trend; AR does not

    def test_auto_picks_ar_on_drift(self):
        auto = AutoForecaster()
        for value in drift(40):
            auto.observe(value)
        assert auto.best.name == "ar"
        assert auto.predict(1) == pytest.approx(4.0, abs=1e-6)

    def test_auto_breaks_ties_in_candidate_order(self):
        auto = AutoForecaster()
        for _ in range(10):
            auto.observe(1.0)  # every model is exact on a constant
        assert auto.best.name == "naive"

    def test_ar_falls_back_to_persistence_when_short(self):
        model = ARForecaster(order=2)
        for value in (1.0, 5.0, 3.0):  # < order + 2 observations
            model.observe(value)
        assert model.predict(1) == 3.0

    def test_mae_is_inf_until_scored(self):
        model = NaiveForecaster()
        assert model.mae == float("inf")
        model.observe(1.0)
        assert model.mae == float("inf")  # first value scores nothing
        model.observe(2.0)
        assert model.mae == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("oracle")
        with pytest.raises(ValueError, match="order"):
            ARForecaster(order=0)
        with pytest.raises(ValueError, match="window"):
            ARForecaster(order=3, window=4)
        with pytest.raises(ValueError, match="alpha"):
            EWMAForecaster(alpha=0.0)
        with pytest.raises(ValueError, match="horizon"):
            NaiveForecaster().predict(0)

    def test_factory_dispatch(self):
        assert isinstance(make_forecaster("naive"), NaiveForecaster)
        assert isinstance(make_forecaster("ewma"), EWMAForecaster)
        assert isinstance(make_forecaster("ar"), ARForecaster)
        assert isinstance(make_forecaster("auto"), AutoForecaster)


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestFleetTelemetry:
    def test_bad_forecaster_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            FleetTelemetry(MetricsRegistry(), forecaster="oracle")

    def test_cold_series_predicts_none(self):
        telemetry = FleetTelemetry(MetricsRegistry())
        assert telemetry.predict_utilisation("edge-00") is None
        assert telemetry.predict_rtt("u0", "edge-00") is None
        assert telemetry.mae(utilisation_series_name("edge-00")) == float("inf")

    def test_record_then_predict(self):
        telemetry = FleetTelemetry(MetricsRegistry(), forecaster="naive")
        for value in (0.1, 0.2, 0.3):
            telemetry.record_server("edge-00", value)
        telemetry.record_link("u0", "edge-00", 0.05)
        assert telemetry.predict_utilisation("edge-00") == pytest.approx(0.3)
        assert telemetry.predict_rtt("u0", "edge-00") == pytest.approx(0.05)
        series = telemetry.metrics.series(utilisation_series_name("edge-00"))
        assert series.count == 3

    def test_horizon_validation(self):
        telemetry = FleetTelemetry(MetricsRegistry())
        with pytest.raises(ValueError, match="horizon"):
            telemetry.predict_utilisation("edge-00", horizon=0)

    def test_hotspots_sorted_with_cold_fallback(self):
        telemetry = FleetTelemetry(MetricsRegistry(), forecaster="naive")
        telemetry.record_server("hot", 0.9)
        # "cold" has no history: its supplied current utilisation is used.
        forecasts = telemetry.hotspots({"hot": 0.9, "cold": 0.5}, horizon=1, threshold=0.8)
        assert [f.server_id for f in forecasts] == ["hot", "cold"]
        assert forecasts[0].breach and not forecasts[1].breach
        assert forecasts[1].predicted == pytest.approx(0.5)


# ----------------------------------------------------------------------
# SLA primitives
# ----------------------------------------------------------------------
class TestUserSLA:
    def test_boundary_admits_exactly(self):
        sla = UserSLA(deadline=10.0)
        assert sla.satisfied_by(10.0)  # exact boundary admits
        assert sla.satisfied_by(9.0)
        assert sla.violated_by(10.0 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            UserSLA(deadline=0.0)
        with pytest.raises(ValueError, match="on_infeasible"):
            UserSLA(deadline=1.0, on_infeasible="retry")

    def test_report_violation_rate(self):
        assert SLAReport(users=0, violations=0, rejections=0, degraded=0).violation_rate == 0.0
        report = SLAReport(users=4, violations=1, rejections=2, degraded=1)
        assert report.violation_rate == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Plan-cache probes (SLA feasibility borrows plans without stat churn)
# ----------------------------------------------------------------------
class TestPlanCachePeek:
    def test_peek_is_stat_and_lru_neutral(self):
        cache = PlanCache(capacity=2)
        plan_a = UserPlan("a", [], [], 0, 0, 0, 0)
        cache.put("a", plan_a)
        cache.put("b", UserPlan("b", [], [], 0, 0, 0, 0))
        before = cache.stats()
        assert cache.peek("a") is plan_a
        assert cache.peek("missing") is None
        after = cache.stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)
        # peek must not refresh LRU order: "a" stays oldest and is evicted.
        cache.put("c", UserPlan("c", [], [], 0, 0, 0, 0))
        assert "a" not in cache
        assert "b" in cache and "c" in cache


# ----------------------------------------------------------------------
# Shared modelled-cost helper (rebalance gain == SLA feasibility path)
# ----------------------------------------------------------------------
class TestSharedModelledHelper:
    def test_modelled_combined_delegates_to_the_shared_helper(self, fleet_profile):
        fleet = EdgeFleet(
            2,
            fleet_profile.server_capacity_per_user * 4 / 2,
            routing=FingerprintAffinityRouting(),
        )
        app = synthesize_application("shared", n_functions=20, seed=2)
        for i in range(4):
            fleet.admit(MobileDevice(f"u{i}", profile=fleet_profile.device), clone(app))
        weights = fleet.config.objective
        for server in fleet.servers.values():
            assert server.modelled_combined(weights) == pytest.approx(
                hypothetical_consumption(server).combined(weights)
            )
            # The no-hypothesis evaluation agrees with the live planner.
            assert server.modelled_combined(weights) == pytest.approx(
                server.current_consumption().combined(weights)
            )

    def test_modelled_user_cost_matches_the_ledger(self, fleet_profile):
        """SLA feasibility and fleet accounting speak one currency: the
        modelled cost of admitting a user on an empty server (RTT
        included) equals that user's post-admission ledger cost."""
        app = synthesize_application("ledger", n_functions=20, seed=3)
        rtt = 0.25
        capacity = fleet_profile.server_capacity_per_user
        probe = EdgeFleet(1, capacity)
        server = next(iter(probe.servers.values()))
        device = MobileDevice("u0", profile=fleet_profile.device)
        plan = make_planner("spectral").plan_user(clone(app))
        weights = probe.config.objective
        modelled = modelled_user_cost(server, device, clone(app), plan, weights, rtt=rtt)

        fleet = EdgeFleet(
            1, capacity, latency=StaticLatencyMap(server_rtt={"edge-00": rtt})
        )
        fleet.admit(MobileDevice("u0", profile=fleet_profile.device), clone(app))
        breakdown = fleet.total_consumption().per_user["u0"]
        assert modelled == pytest.approx(
            weights.combine(breakdown.energy, breakdown.time)
        )


# ----------------------------------------------------------------------
# SLA admission control
# ----------------------------------------------------------------------
class TestSLAAdmission:
    def admitted_cost(self, fleet, user_id):
        breakdown = fleet.total_consumption().per_user[user_id]
        return fleet.config.objective.combine(breakdown.energy, breakdown.time)

    def test_deadline_equal_to_modelled_cost_admits(self, fleet_profile):
        app = synthesize_application("exact", n_functions=20, seed=4)
        capacity = fleet_profile.server_capacity_per_user
        probe = EdgeFleet(1, capacity)
        probe.admit(MobileDevice("u0", profile=fleet_profile.device), clone(app))
        cost = self.admitted_cost(probe, "u0")

        fleet = EdgeFleet(1, capacity)
        admission = fleet.admit(
            MobileDevice("u0", profile=fleet_profile.device),
            clone(app),
            sla=UserSLA(deadline=cost),
        )
        assert admission.server_id is not None
        assert not admission.degraded and not admission.rejected
        report = fleet.sla_report()
        assert (report.users, report.violations) == (1, 0)

    def test_all_infeasible_degrades_without_crashing(self, fleet_profile):
        fleet = EdgeFleet(2, fleet_profile.server_capacity_per_user * 2)
        app = synthesize_application("tight", n_functions=20, seed=5)
        sla = UserSLA(deadline=1e-3)  # nothing can run this fast
        for i in range(4):
            admission = fleet.admit(
                MobileDevice(f"u{i}", profile=fleet_profile.device), clone(app), sla=sla
            )
            assert admission.degraded and admission.server_id is None
        assert fleet.stats().degraded_users == 4
        report = fleet.sla_report()
        assert report.users == 4
        assert report.violations == 4  # all-local execution still misses 1ms
        assert report.degraded == 4
        assert report.violation_rate == pytest.approx(1.0)
        assert report.worst_excess > 0
        assert fleet.metrics.counter("fleet_sla_infeasible").value == 4
        # Retrying without new capacity re-queues them, no crash, no churn.
        assert fleet.retry_degraded() == []
        assert fleet.stats().degraded_users == 4

    def test_reject_action_turns_users_away(self, fleet_profile):
        fleet = EdgeFleet(1, fleet_profile.server_capacity_per_user)
        app = synthesize_application("reject", n_functions=20, seed=6)
        admission = fleet.admit(
            MobileDevice("u0", profile=fleet_profile.device),
            clone(app),
            sla=UserSLA(deadline=1e-3, on_infeasible="reject"),
        )
        assert admission.rejected
        assert admission.server_id is None and not admission.degraded
        assert fleet.stats().users == 0
        assert fleet.stats().degraded_users == 0
        report = fleet.sla_report()
        assert report.rejections == 1
        assert report.users == 0  # rejected users never entered the fleet

    def test_degraded_sla_user_recovers_via_retry(self, fleet_profile):
        """A feasible SLA user degraded for *capacity* keeps their SLA
        through the degraded queue and re-admits when a server returns."""
        fleet = EdgeFleet(
            2, fleet_profile.server_capacity_per_user, max_users_per_server=1
        )
        app = synthesize_application("retry", n_functions=20, seed=7)
        fleet.kill_server("edge-01")
        fleet.admit(MobileDevice("u0", profile=fleet_profile.device), clone(app))
        admission = fleet.admit(
            MobileDevice("u1", profile=fleet_profile.device),
            clone(app),
            sla=UserSLA(deadline=1e6),
        )
        assert admission.degraded  # the only alive server is at its cap

        recovered = fleet.revive_server("edge-01")
        assert [a.user_id for a in recovered] == ["u1"]
        assert recovered[0].server_id == "edge-01"
        report = fleet.sla_report()
        assert (report.users, report.degraded, report.violations) == (1, 0, 0)


# ----------------------------------------------------------------------
# Forecast-aware routing
# ----------------------------------------------------------------------
class TestForecastRouting:
    def load(self, server_id, utilisation, predicted=None, rtt=0.0):
        return ServerLoad(
            server_id=server_id,
            users=1,
            remote_load=utilisation * 100.0,
            capacity=100.0,
            rtt=rtt,
            predicted_utilisation=predicted,
        )

    def test_prefers_the_cooler_forecast(self):
        policy = ForecastRouting()
        # "a" is cool now but trending hot; "b" is warm now, cooling off.
        choice = policy.route(
            "key",
            [self.load("a", 0.1, predicted=0.9), self.load("b", 0.8, predicted=0.2)],
        )
        assert choice == "b"

    def test_falls_back_to_current_utilisation_without_forecast(self):
        policy = ForecastRouting()
        choice = policy.route(
            "key", [self.load("a", 0.7), self.load("b", 0.3)]
        )
        assert choice == "b"

    def test_latency_weight_folds_rtt_into_the_choice(self):
        policy = ForecastRouting(latency_weight=1.0)
        choice = policy.route(
            "key",
            [
                self.load("near", 0.5, predicted=0.5, rtt=0.0),
                self.load("far", 0.4, predicted=0.4, rtt=0.5),
            ],
        )
        assert choice == "near"


# ----------------------------------------------------------------------
# Seeded geo latency
# ----------------------------------------------------------------------
class TestSeededGeoLatency:
    def test_same_seed_reproduces_positions(self):
        ids = [f"u{i}" for i in range(6)]
        first = GeoLatencyMap(seed=7)
        second = GeoLatencyMap(seed=7)
        assert [first.position(i) for i in ids] == [second.position(i) for i in ids]

    def test_different_seeds_move_the_nodes(self):
        ids = [f"u{i}" for i in range(6)]
        one = GeoLatencyMap(seed=1)
        two = GeoLatencyMap(seed=2)
        assert [one.position(i) for i in ids] != [two.position(i) for i in ids]

    def test_unseeded_map_keeps_legacy_positions(self):
        assert GeoLatencyMap().position("u0") == GeoLatencyMap(seed=None).position("u0")

    def test_factory_threads_the_seed(self):
        geo = make_latency_map("geo", seed=5)
        assert isinstance(geo, GeoLatencyMap)
        assert geo.seed == 5


# ----------------------------------------------------------------------
# Proactive rebalancing
# ----------------------------------------------------------------------
class TestProactiveRebalance:
    def hotspot_fleet(self, fleet_profile, **kwargs):
        """Heterogeneous pool + affinity routing: every user of one hot
        app lands on one server, so its utilisation climbs tick by tick
        while the others idle — the forecastable hotspot."""
        fleet = EdgeFleet(
            capacities=[100.0, 400.0, 400.0],
            routing=FingerprintAffinityRouting(),
            **kwargs,
        )
        app = synthesize_application("hot", n_functions=30, seed=2)
        for i in range(12):
            fleet.admit(MobileDevice(f"u{i}", profile=fleet_profile.device), clone(app))
        return fleet

    def hot_server(self, fleet):
        return max(fleet.servers.values(), key=lambda s: s.utilisation)

    def test_forecasted_breach_triggers_charged_moves(self, fleet_profile):
        fleet = self.hotspot_fleet(fleet_profile)
        hot = self.hot_server(fleet)
        before = hot.utilisation
        assert before > 1.0  # the hotspot actually formed (oversubscribed)
        # Each offloader shifts ~0.65 utilisation onto a 400-capacity
        # server, so a 0.7 threshold lets the drain place one user per
        # cool server and then stop (a second each would breach it).
        moves = fleet.rebalance(proactive=True, horizon=3, utilisation_threshold=0.7)
        assert moves >= 1
        assert hot.utilisation < before  # the predicted breach was relieved
        assert fleet.migration_debt  # every move was charged
        assert fleet.metrics.counter("fleet_proactive_moves").value == moves
        assert fleet.metrics.counter("fleet_migrations").value == moves

    def test_threshold_above_the_forecast_means_no_moves(self, fleet_profile):
        fleet = self.hotspot_fleet(fleet_profile)
        headroom = 2 * max(s.utilisation for s in fleet.servers.values())
        assert fleet.rebalance(proactive=True, utilisation_threshold=headroom) == 0
        assert not fleet.migration_debt

    def test_proactive_requires_telemetry(self, fleet_profile):
        fleet = EdgeFleet(2, fleet_profile.server_capacity_per_user, forecaster=None)
        app = synthesize_application("silent", n_functions=20, seed=8)
        fleet.admit(MobileDevice("u0", profile=fleet_profile.device), clone(app))
        assert fleet.telemetry is None  # admission ticks are no-ops
        with pytest.raises(ValueError, match="telemetry"):
            fleet.rebalance(proactive=True)

    def test_horizon_validation(self, fleet_profile):
        fleet = EdgeFleet(2, fleet_profile.server_capacity_per_user)
        with pytest.raises(ValueError, match="horizon"):
            fleet.rebalance(proactive=True, horizon=0)

    def test_admissions_feed_the_telemetry(self, fleet_profile):
        fleet = self.hotspot_fleet(fleet_profile)
        hot = self.hot_server(fleet)
        series = fleet.metrics.series(utilisation_series_name(hot.server_id))
        assert series.count >= 12  # one sample per admission tick
        assert fleet.telemetry.predict_utilisation(hot.server_id) > 0


# ----------------------------------------------------------------------
# Same-seed determinism of the experiment sweep
# ----------------------------------------------------------------------
class TestExperimentDeterminism:
    def run_once(self, seed):
        return run_fleet_routing_experiment(
            n_users=8,
            n_servers=2,
            policies=("least-loaded", "forecast"),
            seed=seed,
            latency=GeoLatencyMap(seed=seed),
            rebalance="proactive",
            sla_deadline=200.0,
            forecaster="auto",
            horizon=2,
        )

    def test_identical_rows_for_identical_seeds(self):
        first = self.run_once(3)
        second = self.run_once(3)
        assert first.rows == second.rows
        assert first.single == second.single
        assert all(row.sla_users == 8 for row in first.rows)
