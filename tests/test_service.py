"""Tests for the plan-serving subsystem (repro.service).

Covers the acceptance contract of the serving layer: fingerprint
invariances, LRU/spill behaviour, single-flight dedup under real
threads, load shedding, structured validation errors, timeout/retry,
the serve-bench CLI smoke path, and the 200-request/8-app replay
criterion (hit rate >= 0.9, planner invocations <= 16, cached plans
byte-identical to cold plans).
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callgraph.model import FunctionCallGraph
from repro.core import PlannerConfig, make_planner
from repro.core.planner import OffloadingPlanner
from repro.core.results import UserPlan
from repro.service import (
    FingerprintError,
    Histogram,
    PlanCache,
    PlanService,
    QueueFullError,
    RequestQueue,
    ServiceConfig,
    config_fingerprint,
    graph_fingerprint,
    plan_digest,
    plan_from_dict,
    plan_to_dict,
    request_fingerprint,
    structural_fingerprint,
)
from repro.service.batching import PlanRequest
from repro.workloads import synthesize_application
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import (
    call_graph_from_dict,
    call_graph_to_dict,
    replay_arrivals,
)


def random_call_graph(seed: int, app_name: str = "prop") -> FunctionCallGraph:
    """Small random call graph with varied weights/components/flags."""
    rng = random.Random(seed)
    n = rng.randint(3, 12)
    fcg = FunctionCallGraph(app_name)
    names = [f"f{i}" for i in range(n)]
    for name in names:
        fcg.add_function(
            name,
            computation=round(rng.uniform(1.0, 50.0), 3),
            component=rng.choice(["main", "aux"]),
            offloadable=rng.random() > 0.2,
        )
    for i in range(1, n):
        j = rng.randrange(i)
        fcg.add_data_flow(names[i], names[j], round(rng.uniform(0.5, 20.0), 3))
    for _ in range(rng.randint(0, n)):
        u, v = rng.sample(names, 2)
        if not fcg.graph.has_edge(u, v):
            fcg.add_data_flow(u, v, round(rng.uniform(0.5, 20.0), 3))
    return fcg


def rebuild(
    fcg: FunctionCallGraph, rename=None, order_seed: int | None = None
) -> FunctionCallGraph:
    """Reconstruct *fcg*, optionally renaming nodes and/or shuffling the
    insertion order of functions and flows."""
    rename = rename or (lambda name: name)
    functions = [fcg.info(name) for name in fcg.functions()]
    flows = list(fcg.graph.edges())
    if order_seed is not None:
        rng = random.Random(order_seed)
        rng.shuffle(functions)
        rng.shuffle(flows)
    clone = FunctionCallGraph(fcg.app_name)
    for info in functions:
        clone.add_function(
            rename(info.name),
            computation=info.computation,
            component=info.component,
            offloadable=info.offloadable,
        )
    for u, v, w in flows:
        clone.add_data_flow(rename(str(u)), rename(str(v)), w)
    return clone


class TestFingerprint:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), order_seed=st.integers(0, 10_000))
    def test_content_fingerprint_invariant_under_reordering(self, seed, order_seed):
        original = random_call_graph(seed)
        reordered = rebuild(original, order_seed=order_seed)
        assert graph_fingerprint(original) == graph_fingerprint(reordered)
        assert structural_fingerprint(original) == structural_fingerprint(reordered)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), order_seed=st.integers(0, 10_000))
    def test_structural_fingerprint_invariant_under_relabelling(self, seed, order_seed):
        original = random_call_graph(seed)
        relabeled = rebuild(
            original, rename=lambda name: f"renamed::{name}", order_seed=order_seed
        )
        assert structural_fingerprint(original) == structural_fingerprint(relabeled)
        # Content tier is deliberately name-sensitive: cached plans name
        # concrete functions, so renamed graphs must not share entries.
        assert graph_fingerprint(original) != graph_fingerprint(relabeled)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), which=st.integers(0, 2))
    def test_fingerprints_differ_on_any_mutation(self, seed, which):
        original = random_call_graph(seed)
        mutated = rebuild(original)
        names = list(mutated.functions())
        rng = random.Random(seed)
        if which == 0:  # perturb one node weight
            victim = rng.choice(names)
            mutated.graph.set_node_weight(victim, mutated.graph.node_weight(victim) + 1.0)
            info = mutated.info(victim)
            mutated._info[victim] = dataclasses.replace(
                info, computation=info.computation + 1.0
            )
        elif which == 1:  # perturb one edge weight
            u, v, w = rng.choice(mutated.graph.edge_list())
            mutated.graph.set_edge_weight(u, v, w + 1.0)
        else:  # flip one offloadability flag
            victim = rng.choice(names)
            info = mutated.info(victim)
            mutated._info[victim] = dataclasses.replace(
                info, offloadable=not info.offloadable
            )
        assert graph_fingerprint(original) != graph_fingerprint(mutated)
        assert structural_fingerprint(original) != structural_fingerprint(mutated)

    def test_stable_across_trace_round_trip(self):
        app = synthesize_application("demo", n_functions=30, seed=3)
        copy = call_graph_from_dict(call_graph_to_dict(app))
        assert copy is not app
        assert graph_fingerprint(app) == graph_fingerprint(copy)

    def test_config_fingerprint_distinguishes_configs(self):
        base = PlannerConfig()
        refined = dataclasses.replace(base, refine_cuts=True)
        assert config_fingerprint(base) != config_fingerprint(refined)
        assert config_fingerprint(base) == config_fingerprint(PlannerConfig())

    def test_config_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(FingerprintError):
            config_fingerprint(object())

    def test_request_fingerprint_includes_strategy(self):
        app = random_call_graph(1)
        config = PlannerConfig()
        assert request_fingerprint(app, config, "spectral") != request_fingerprint(
            app, config, "kl"
        )


class TestPlannerContentCache:
    def test_plan_system_shares_plans_across_identical_objects(self, device_profile):
        from repro.mec.devices import EdgeServer, MobileDevice
        from repro.mec.system import MECSystem, UserContext

        app = synthesize_application("shared", n_functions=30, seed=7)
        twin = call_graph_from_dict(call_graph_to_dict(app))
        users = [
            UserContext(MobileDevice("u1", profile=device_profile), app),
            UserContext(MobileDevice("u2", profile=device_profile), twin),
        ]
        system = MECSystem(EdgeServer(400.0), users)
        planner = make_planner("spectral")
        calls = []
        inner = planner.plan_user
        planner.plan_user = lambda graph: calls.append(1) or inner(graph)
        result = planner.plan_system(system, {"u1": app, "u2": twin})
        assert len(calls) == 1
        assert result.user_plans["u1"] is result.user_plans["u2"]

    def test_plan_system_identity_fallback_for_opaque_config(self, device_profile):
        from repro.mec.devices import EdgeServer, MobileDevice
        from repro.mec.system import MECSystem, UserContext

        class OpaqueRule:
            """Not a dataclass: has no canonical fingerprint encoding."""

            def threshold(self, graph):
                return 0.0

            def is_strong(self, graph, weight):
                return weight > 0.0

        from repro.compression.compressor import CompressionConfig

        config = PlannerConfig(compression=CompressionConfig(threshold_rule=OpaqueRule()))
        planner = OffloadingPlanner(
            make_planner("spectral").cut_strategy, config=config, strategy_name="opaque"
        )
        app = synthesize_application("solo", n_functions=20, seed=9)
        system = MECSystem(
            EdgeServer(300.0), [UserContext(MobileDevice("u1", profile=device_profile), app)]
        )
        result = planner.plan_system(system, {"u1": app})
        assert "u1" in result.user_plans

    def test_plan_user_records_stage_timings(self):
        planner = make_planner("spectral")
        plan = planner.plan_user(synthesize_application("timed", n_functions=25, seed=2))
        assert set(plan.stage_seconds) == {"compress", "cut"}
        assert all(seconds >= 0.0 for seconds in plan.stage_seconds.values())

    def test_plan_system_records_greedy_timing(self, single_user_system):
        system, call_graphs = single_user_system
        result = make_planner("spectral").plan_system(system, call_graphs)
        assert result.user_plans["u1"].stage_seconds["greedy"] >= 0.0


def make_plan(name: str = "app", n_parts: int = 2) -> UserPlan:
    parts = [frozenset({f"{name}-f{i}", f"{name}-g{i}"}) for i in range(n_parts)]
    return UserPlan(
        app_name=name,
        parts=parts,
        bisections=[({0}, set(range(1, n_parts)))],
        compressed_nodes=n_parts,
        compressed_edges=n_parts - 1,
        original_nodes=2 * n_parts,
        original_edges=2 * n_parts - 1,
        cut_values=[1.5],
        propagation_rounds=2,
        stage_seconds={"compress": 0.1, "cut": 0.2},
    )


class TestPlanCache:
    def test_lru_eviction_and_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("a", make_plan("a"))
        cache.put("b", make_plan("b"))
        assert cache.get("a") is not None  # refresh "a"; "b" is now LRU
        cache.put("c", make_plan("c"))
        stats = cache.stats()
        assert stats.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats().misses == 1

    def test_spill_round_trip(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(capacity=8, spill_path=path)
        plans = {key: make_plan(key, n_parts=3) for key in ("x", "y", "z")}
        for key, plan in plans.items():
            cache.put(key, plan)
        cache.save()

        restored = PlanCache(capacity=8, spill_path=path)
        assert restored.load() == 3
        for key, plan in plans.items():
            loaded = restored.get(key)
            assert plan_to_dict(loaded) == plan_to_dict(plan)
            assert plan_digest(loaded) == plan_digest(plan)

    def test_load_missing_file_is_empty_start(self, tmp_path):
        cache = PlanCache(spill_path=tmp_path / "absent.json")
        assert cache.load() == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "stale.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            PlanCache(spill_path=path).load()

    def test_plan_serialization_round_trip(self):
        plan = make_plan("round", n_parts=4)
        assert plan_to_dict(plan_from_dict(plan_to_dict(plan))) == plan_to_dict(plan)

    def test_digest_ignores_timings(self):
        one, two = make_plan("same"), make_plan("same")
        two.stage_seconds = {"compress": 9.9, "cut": 0.0, "greedy": 1.0}
        assert plan_digest(one) == plan_digest(two)
        assert plan_to_dict(one) != plan_to_dict(two)


class TestRequestQueue:
    def test_single_flight_coalescing(self):
        queue = RequestQueue(max_depth=4)
        first, created_first = queue.submit(PlanRequest(graph=None, key="k"))
        second, created_second = queue.submit(PlanRequest(graph=None, key="k"))
        assert created_first and not created_second
        assert first is second
        assert queue.depth == 1 and queue.pending == 1

    def test_bounded_depth(self):
        queue = RequestQueue(max_depth=1)
        queue.submit(PlanRequest(graph=None, key="a"))
        with pytest.raises(QueueFullError):
            queue.submit(PlanRequest(graph=None, key="b"))
        # Coalescing onto the existing flight never sheds.
        _, created = queue.submit(PlanRequest(graph=None, key="a"))
        assert not created


def slow_planner(delay: float = 0.2) -> OffloadingPlanner:
    planner = make_planner("spectral")
    inner = planner.plan_user

    def slowed(graph):
        time.sleep(delay)
        return inner(graph)

    planner.plan_user = slowed
    return planner


class TestPlanService:
    def test_single_flight_many_threads_one_invocation(self):
        app = synthesize_application("hot", n_functions=25, seed=5)
        copies = [call_graph_from_dict(call_graph_to_dict(app)) for _ in range(8)]
        service = PlanService(slow_planner(0.15), ServiceConfig(workers=2))
        responses: list = [None] * len(copies)

        def hit(index: int) -> None:
            responses[index] = service.plan(copies[index])

        with service:
            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(len(copies))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service.planner_invocations == 1
            coalesced = service.metrics.counter("requests_coalesced").value
            hits = service.cache.stats().hits
            assert coalesced + hits == len(copies) - 1
        digests = {plan_digest(r.plan) for r in responses}
        assert all(r.ok for r in responses)
        assert len(digests) == 1

    def test_load_shedding_on_bounded_queue(self):
        apps = [synthesize_application(f"app{i}", n_functions=20, seed=i) for i in range(4)]
        config = ServiceConfig(workers=1, max_queue_depth=1, request_timeout=10.0)
        with PlanService(slow_planner(0.3), config) as service:
            tickets = [service.submit(app) for app in apps]
            responses = [ticket.result() for ticket in tickets]
            shed = [r for r in responses if r.error is not None and r.error.code == "shed"]
            served = [r for r in responses if r.ok]
            assert shed, "bounded queue must shed overflow requests"
            assert served, "the in-flight request must still be served"
            assert service.metrics.counter("requests_shed").value == len(shed)

    def test_invalid_graph_returns_structured_error_and_worker_survives(self):
        broken = FunctionCallGraph("broken")
        broken.add_function("a", computation=1.0)
        broken.add_function("b", computation=2.0)
        # Corrupt the adjacency directly: one-sided edge breaks symmetry.
        broken.graph._adjacency["a"]["b"] = 5.0

        healthy = synthesize_application("fine", n_functions=20, seed=1)
        with PlanService(make_planner("spectral")) as service:
            bad = service.plan(broken)
            assert not bad.ok
            assert bad.error.code == "invalid-graph"
            assert "asymmetric" in bad.error.message
            assert service.metrics.counter("requests_shed").value == 1
            assert service.metrics.counter("errors_invalid-graph").value == 1
            good = service.plan(healthy)
            assert good.ok, "worker thread must survive a rejected graph"

    def test_planner_crash_retried_once_then_succeeds(self):
        planner = make_planner("spectral")
        inner = planner.plan_user
        attempts = []

        def flaky(graph):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient solver failure")
            return inner(graph)

        planner.plan_user = flaky
        with PlanService(planner) as service:
            response = service.plan(synthesize_application("flaky", n_functions=20, seed=4))
            assert response.ok
            assert len(attempts) == 2
            assert service.metrics.counter("planner_retries").value == 1

    def test_planner_crash_exhausts_retries_to_internal_error(self):
        planner = make_planner("spectral")

        def always_broken(graph):
            raise RuntimeError("permanently broken")

        planner.plan_user = always_broken
        with PlanService(planner) as service:
            response = service.plan(synthesize_application("dead", n_functions=15, seed=6))
            assert not response.ok
            assert response.error.code == "internal"
            assert "permanently broken" in response.error.message

    def test_request_timeout_is_structured(self):
        with PlanService(slow_planner(1.0), ServiceConfig(workers=1)) as service:
            ticket = service.submit(synthesize_application("slow", n_functions=20, seed=8))
            response = ticket.result(timeout=0.02)
            assert not response.ok
            assert response.error.code == "timeout"
            assert service.metrics.counter("requests_timeout").value == 1

    def test_cache_spill_survives_restart(self, tmp_path):
        spill = tmp_path / "spill.json"
        app = synthesize_application("persist", n_functions=25, seed=11)
        config = ServiceConfig(workers=1, spill_path=str(spill))
        with PlanService(make_planner("spectral"), config) as service:
            first = service.plan(app)
            assert first.ok and service.planner_invocations == 1
        assert spill.exists()

        with PlanService(make_planner("spectral"), config) as reborn:
            second = reborn.plan(call_graph_from_dict(call_graph_to_dict(app)))
            assert second.ok and second.cached
            assert reborn.planner_invocations == 0
            assert plan_digest(second.plan) == plan_digest(first.plan)

    def test_submit_after_close_is_structured(self):
        service = PlanService(make_planner("spectral"))
        service.start()
        service.close()
        response = service.plan(synthesize_application("late", n_functions=10, seed=3))
        assert not response.ok
        assert response.error.code == "closed"


class TestOnlineAdmissionWithCachedPlans:
    def test_admit_accepts_precomputed_plan(self, device_profile):
        from repro.core.baselines import spectral_cut_strategy
        from repro.mec.devices import EdgeServer, MobileDevice
        from repro.mec.online import OnlinePlanner

        app = synthesize_application("online", n_functions=25, seed=13)
        with PlanService(make_planner("spectral")) as service:
            cached = service.plan(app).plan

        fresh = OnlinePlanner(EdgeServer(300.0), spectral_cut_strategy())
        with_plan = OnlinePlanner(EdgeServer(300.0), spectral_cut_strategy())
        baseline = fresh.admit(MobileDevice("u1", profile=device_profile), app)
        record = with_plan.admit(
            MobileDevice("u1", profile=device_profile), app, plan=cached
        )
        assert record.plan is cached
        assert record.consumption_after.energy == pytest.approx(
            baseline.consumption_after.energy
        )


class TestHistogramPercentiles:
    """Property tests for the nearest-rank percentile (direct coverage)."""

    finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)

    @given(st.lists(finite, min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_extreme_quantiles_are_window_min_and_max(self, values):
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        assert hist.percentile(0.0) == min(float(v) for v in values)
        assert hist.percentile(1.0) == max(float(v) for v in values)

    @given(finite, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_single_sample_dominates_every_quantile(self, value, q):
        hist = Histogram("h")
        hist.observe(value)
        assert hist.percentile(q) == float(value)

    @given(st.lists(finite, min_size=5, max_size=40), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_window_eviction_keeps_only_recent_samples(self, values, window):
        hist = Histogram("h", window=window)
        for value in values:
            hist.observe(value)
        surviving = sorted(float(v) for v in values[-window:])
        assert hist.percentile(0.0) == surviving[0]
        assert hist.percentile(1.0) == surviving[-1]
        for q in (0.25, 0.5, 0.75):
            rank = min(len(surviving) - 1, int(q * len(surviving)))
            assert hist.percentile(q) == surviving[rank]
        # count/mean stay exact over *all* observations, not the window.
        assert hist.count == len(values)

    @given(st.lists(finite, min_size=1, max_size=30), st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_monotone_in_q(self, values, quantiles):
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        ordered = sorted(quantiles)
        results = [hist.percentile(q) for q in ordered]
        assert results == sorted(results)

    def test_empty_histogram_and_invalid_quantiles(self):
        hist = Histogram("h")
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(1.0) == 0.0
        with pytest.raises(ValueError, match=r"percentile must be in \[0, 1\]"):
            hist.percentile(1.5)
        with pytest.raises(ValueError, match="window must be >= 1"):
            Histogram("h", window=0)


class TestAdmitParityUnderAllocationPolicies:
    """ISSUE satellite: admit(plan=...) must be consumption-identical to
    cold admission under non-default allocation policies, not just FCFS."""

    @pytest.mark.parametrize("allocation_name", ["equal", "proportional"])
    def test_cached_plan_yields_identical_consumption(
        self, device_profile, allocation_name
    ):
        from repro.core.baselines import spectral_cut_strategy
        from repro.mec.admission import (
            EqualShareAllocation,
            ProportionalShareAllocation,
        )
        from repro.mec.devices import EdgeServer, MobileDevice
        from repro.mec.online import OnlinePlanner

        def allocation():
            if allocation_name == "equal":
                return EqualShareAllocation()
            return ProportionalShareAllocation()

        first = synthesize_application("parity-a", n_functions=25, seed=21)
        second = synthesize_application("parity-b", n_functions=20, seed=22)
        with PlanService(make_planner("spectral")) as service:
            cached = service.plan(second).plan

        cold = OnlinePlanner(
            EdgeServer(300.0), spectral_cut_strategy(), allocation=allocation()
        )
        warm = OnlinePlanner(
            EdgeServer(300.0), spectral_cut_strategy(), allocation=allocation()
        )
        cold.admit(MobileDevice("u1", profile=device_profile), first)
        warm.admit(MobileDevice("u1", profile=device_profile), first)
        cold_record = cold.admit(MobileDevice("u2", profile=device_profile), second)
        warm_record = warm.admit(
            MobileDevice("u2", profile=device_profile), second, plan=cached
        )

        assert warm_record.plan is cached
        # Identical SystemConsumption, per user and in every component.
        assert warm_record.consumption_after.per_user == cold_record.consumption_after.per_user
        assert warm.current_consumption().per_user == cold.current_consumption().per_user


class TestReplayArrivals:
    def test_fresh_objects_share_fingerprints(self):
        workload = build_mec_system(6, quick_profile(), graph_size=30)
        arrivals = replay_arrivals(workload, seed=1)
        assert len(arrivals) == 6
        for user_id, graph in arrivals:
            pooled = workload.call_graphs[user_id]
            assert graph is not pooled
            assert graph_fingerprint(graph) == graph_fingerprint(pooled)

    def test_poisson_order_is_deterministic(self):
        workload = build_mec_system(8, quick_profile(), graph_size=30)
        first = [uid for uid, _ in replay_arrivals(workload, rate=5.0, seed=3)]
        second = [uid for uid, _ in replay_arrivals(workload, rate=5.0, seed=3)]
        assert first == second
        assert sorted(first) == sorted(uid for uid, _ in replay_arrivals(workload))


class TestServeBenchCLI:
    def test_smoke_path(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "service hit rate" in out
        assert "plan parity: cached == cold for 4/4 apps" in out
        assert "requests ok/shed/errored: 24/0/0" in out
        assert "request latency p50/p95" in out

    def test_spill_flag_writes_cache(self, tmp_path, capsys):
        from repro.cli import main

        spill = tmp_path / "cache.json"
        assert main(["serve-bench", "--smoke", "--spill", str(spill)]) == 0
        assert spill.exists()
        assert "spilled plan cache" in capsys.readouterr().out


class TestAcceptanceReplay:
    """The ISSUE's acceptance criterion, verbatim: 200 requests, 8 apps."""

    def test_200_request_replay_hits_cache(self):
        profile = dataclasses.replace(
            quick_profile(), distinct_graphs=8, multiuser_graph_size=40
        )
        workload = build_mec_system(200, profile)
        arrivals = replay_arrivals(workload, rate=200.0, seed=0)
        assert len({graph_fingerprint(g) for _, g in arrivals}) == 8

        planner = make_planner("spectral")
        with PlanService(planner, ServiceConfig(workers=4, max_queue_depth=256)) as service:
            tickets = [service.submit(graph) for _, graph in arrivals]
            responses = [ticket.result() for ticket in tickets]
            invocations = service.planner_invocations

        assert all(r.ok for r in responses)
        hit_rate = 1.0 - invocations / len(responses)
        assert hit_rate >= 0.9
        assert invocations <= 16

        # Byte-identical plans: cached responses vs a cold planner run.
        cold = make_planner("spectral")
        cold_digests = {
            graph_fingerprint(app): plan_digest(cold.plan_user(app))
            for app in workload.distinct_graphs
        }
        for (_, graph), response in zip(arrivals, responses):
            assert plan_digest(response.plan) == cold_digests[graph_fingerprint(graph)]
