"""Tests for simulation event tracing."""

import json

import pytest

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import ServerDegradation, simulate_scheme
from repro.simulation.tracing import traced_simulation

PROFILE = DeviceProfile(
    compute_capacity=10.0, power_compute=2.0, power_transmit=5.0, bandwidth=20.0
)


def fixture_system(n_users: int = 2):
    contexts, apps = [], {}
    for k in range(n_users):
        uid = f"u{k+1}"
        fcg = FunctionCallGraph(uid)
        fcg.add_function("pin", computation=20.0, offloadable=False)
        fcg.add_function("ship", computation=100.0)
        fcg.add_data_flow("pin", "ship", 20.0 + 10.0 * k)
        apps[uid] = PartitionedApplication(uid, fcg, [{"ship"}])
        contexts.append(UserContext(MobileDevice(uid, profile=PROFILE), fcg))
    system = MECSystem(EdgeServer(50.0), contexts)
    placement = {uid: {0} for uid in apps}
    return system, apps, placement


class TestTracing:
    def test_report_matches_untraced_run(self):
        system, apps, placement = fixture_system()
        plain = simulate_scheme(system, apps, placement)
        traced, trace = traced_simulation(system, apps, placement)
        assert traced.total_energy == pytest.approx(plain.total_energy)
        assert traced.makespan == pytest.approx(plain.makespan)
        assert len(trace.entries) == traced.events_processed

    def test_trace_is_time_ordered(self):
        system, apps, placement = fixture_system(3)
        _, trace = traced_simulation(system, apps, placement)
        assert trace.is_time_ordered()

    def test_event_kinds_present(self):
        system, apps, placement = fixture_system()
        _, trace = traced_simulation(system, apps, placement)
        kinds = {e.kind for e in trace.entries}
        assert {"upload_begin", "upload_done", "service_done"} <= kinds

    def test_fault_events_recorded_by_type(self):
        system, apps, placement = fixture_system()
        _, trace = traced_simulation(
            system, apps, placement, faults=[ServerDegradation(time=0.5, factor=0.5)]
        )
        faults = trace.of_kind("fault")
        assert len(faults) == 1
        assert faults[0].subject == "ServerDegradation"

    def test_per_user_filter(self):
        system, apps, placement = fixture_system()
        _, trace = traced_simulation(system, apps, placement)
        u1_events = trace.for_user("u1")
        assert u1_events
        assert all(e.subject == "u1" for e in u1_events)

    def test_render_and_clip(self):
        system, apps, placement = fixture_system(3)
        _, trace = traced_simulation(system, apps, placement)
        full = trace.render()
        assert full.count("\n") + 1 == len(trace.entries)
        clipped = trace.render(limit=2)
        assert "more)" in clipped

    def test_json_export(self):
        system, apps, placement = fixture_system()
        _, trace = traced_simulation(system, apps, placement)
        payload = json.loads(json.dumps(trace.to_dicts()))
        assert payload[0]["index"] == 0
        assert {"index", "time", "kind", "subject"} <= set(payload[0])

    def test_engine_restored_after_tracing(self):
        """Tracing must not leak the patched queue into later runs."""
        system, apps, placement = fixture_system()
        traced_simulation(system, apps, placement)
        import repro.simulation.engine as engine_module
        from repro.simulation.events import EventQueue

        assert engine_module.EventQueue is EventQueue
        # And a plain run still works.
        assert simulate_scheme(system, apps, placement).makespan > 0
