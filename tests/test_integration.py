"""End-to-end integration tests across the full pipeline.

These run the complete paper pipeline — bytecode extraction, compression,
cut, greedy scheme generation, energy evaluation — and verify system-wide
invariants that no single module can check alone.
"""

import pytest

from repro.callgraph.bytecode import ApplicationBinary
from repro.callgraph.extractor import extract_call_graph
from repro.core.baselines import make_planner
from repro.distributed.cluster import LocalCluster
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import (
    call_graph_from_weighted_graph,
    synthesize_application,
)
from repro.workloads.multiuser import build_mec_system
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile, quick_profile


def build_single_user(seed: int = 1, n_functions: int = 60):
    app = synthesize_application("it-app", n_functions=n_functions, seed=seed)
    profile = DeviceProfile(
        compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
    )
    device = MobileDevice("u1", profile=profile)
    system = MECSystem(EdgeServer(total_capacity=300.0), [UserContext(device, app)])
    return system, app


class TestEndToEnd:
    @pytest.mark.parametrize("strategy", ["spectral", "maxflow", "kl"])
    def test_full_pipeline_produces_feasible_scheme(self, strategy):
        system, app = build_single_user()
        result = make_planner(strategy).plan_system(system, {"u1": app})
        remote = result.scheme.remote_for("u1")
        # Feasibility: remote functions exist, are offloadable, and pinned
        # functions stay local.
        assert remote <= set(app.offloadable_functions())
        # Consumption must be reproducible from the scheme alone.
        plan = result.user_plans["u1"]
        papp = PartitionedApplication("u1", app, plan.parts)
        re_eval = system.evaluate_scheme({"u1": papp}, result.scheme)
        assert re_eval.energy == pytest.approx(result.consumption.energy)
        assert re_eval.time == pytest.approx(result.consumption.time)

    def test_offloading_beats_all_local_on_combined_objective(self):
        system, app = build_single_user(seed=2, n_functions=80)
        result = make_planner("spectral").plan_system(system, {"u1": app})
        plan = result.user_plans["u1"]
        papp = PartitionedApplication("u1", app, plan.parts)
        all_local = system.evaluate_placement({"u1": papp}, {"u1": set()})
        assert result.consumption.combined() <= all_local.combined() + 1e-9

    def test_greedy_beats_initial_placement(self):
        from repro.mec.greedy import initial_placement

        system, app = build_single_user(seed=3, n_functions=70)
        planner = make_planner("spectral")
        plan = planner.plan_user(app)
        papp = PartitionedApplication("u1", app, plan.parts)
        apps = {"u1": papp}
        start = initial_placement(apps, {"u1": plan.bisections})
        start_value = system.evaluate_placement(apps, start).combined()
        result = planner.plan_system(system, {"u1": app})
        assert result.consumption.combined() <= start_value + 1e-9

    def test_spark_strategy_equivalent_to_spectral(self):
        """The distributed solver must pick the same (or equally good)
        cuts as the in-process spectral solver."""
        g = netgen_graph(NetgenConfig(n_nodes=80, n_edges=340, seed=4))
        app = call_graph_from_weighted_graph(g, unoffloadable_fraction=0.05, seed=4)
        plain = make_planner("spectral").plan_user(app)
        with LocalCluster(workers=2) as cluster:
            spark = make_planner("spectral-spark", cluster=cluster).plan_user(app)
        assert spark.total_cut_value == pytest.approx(
            plain.total_cut_value, rel=1e-6
        )

    def test_bytecode_to_scheme_route(self):
        """From raw IR to an offloading decision in one pass."""
        binary = ApplicationBinary("route", entry_point="main")
        main = binary.define("main", component="ui")
        main.compute(4.0).ui_render()
        heavy = binary.define("render_farm", component="work")
        heavy.compute(500.0).return_data(3.0)
        light = binary.define("ui_tick", component="ui")
        light.compute(1.0).sensor_read()
        main.call("render_farm", 2.0)
        main.call("ui_tick", 1.0)

        app = extract_call_graph(binary)
        profile = DeviceProfile(
            compute_capacity=10.0, power_compute=1.0, power_transmit=4.0, bandwidth=100.0
        )
        system = MECSystem(
            EdgeServer(total_capacity=500.0),
            [UserContext(MobileDevice("u1", profile=profile), app)],
        )
        result = make_planner("spectral").plan_system(system, {"u1": app})
        # The massive pure-compute function gets offloaded; sensor/UI stay.
        assert "render_farm" in result.scheme.remote_for("u1")
        assert "ui_tick" not in result.scheme.remote_for("u1")
        assert "main" not in result.scheme.remote_for("u1")


class TestMultiUserIntegration:
    def test_multiuser_plan_scales_consistently(self):
        profile = ExperimentProfile(
            name="it",
            graph_sizes=(60,),
            user_counts=(3, 6),
            multiuser_graph_size=60,
            distinct_graphs=2,
        )
        planner = make_planner("spectral")
        totals = []
        for n_users in profile.user_counts:
            workload = build_mec_system(n_users, profile)
            result = planner.plan_system(workload.system, workload.call_graphs)
            totals.append(result.consumption.energy)
            # Every user received a decision.
            for user in workload.system.users:
                assert user.user_id in result.user_plans
        # Doubling users roughly doubles consumption (within 3x slack).
        assert totals[1] > totals[0]
        assert totals[1] < 4.0 * totals[0]

    def test_shared_graphs_get_identical_plans(self):
        profile = quick_profile()
        workload = build_mec_system(4, profile, graph_size=60)
        result = make_planner("spectral").plan_system(
            workload.system, workload.call_graphs
        )
        # Users on the same pool graph share the same UserPlan object.
        by_index: dict[int, object] = {}
        for user_id, index in workload.user_graph_index.items():
            plan = result.user_plans[user_id]
            if index in by_index:
                assert plan is by_index[index]
            by_index[index] = plan

    def test_server_pressure_reduces_offloading(self):
        """Starve the server: the greedy must respond by keeping more
        work local (the balance Section III describes)."""
        app = synthesize_application("pressure", n_functions=60, seed=5)
        profile = DeviceProfile(
            compute_capacity=20.0, power_compute=1.0, power_transmit=6.0, bandwidth=70.0
        )

        def run(server_capacity: float) -> int:
            users = [UserContext(MobileDevice("u1", profile=profile), app)]
            system = MECSystem(EdgeServer(server_capacity), users)
            result = make_planner("spectral").plan_system(system, {"u1": app})
            return result.scheme.offload_count("u1")

        generous = run(1000.0)
        starved = run(1.0)
        assert starved <= generous
